//! Runs one fuzzing campaign as a sharded cooperative fleet.
//! Usage: fleetrunner [--subject NAME] [--execs N] [--seeds S]
//!                    [--shards N] [--sync-every E]
//!                    [--exec-mode full|fast|tiered]
//!                    [--checkpoint-dir D] [--resume]
//!                    [--stop-after-epochs K] [--compare]
//!                    [--metrics-out PATH]
//!
//! `--execs N` is the *total* execution budget, split evenly over
//! `--shards N` workers (shard `i` runs seed `S + i`); `--sync-every E`
//! is the per-shard execution count between synchronization epochs
//! (default: an eighth of the shard budget, at least 50). With
//! `--checkpoint-dir D` the fleet checkpoints into `D` at every epoch
//! boundary; `--stop-after-epochs K` exits after global epoch K (the
//! "kill" half of the CI kill-and-resume test) and `--resume` continues
//! a checkpointed fleet — the resumed run is digest-identical to an
//! uninterrupted one. `--compare` additionally runs the single-shard
//! driver under the per-shard budget plus an independent N-restart
//! ensemble (a fleet that syncs exactly once, at the end) and reports,
//! for each side, how many total executions it needed to reach the
//! single driver's token count and exact token set
//! (EXPERIMENTS.md "Fleet sharding").
//!
//! `--exec-mode` selects the shards' instrumentation tiering (`full`,
//! the default, runs every execution fully instrumented; `fast` and
//! `tiered` run the fast-failure sink and escalate selectively — see
//! DESIGN.md §12). All three modes are deterministic per seed.
//!
//! The run always ends by printing `fleet digest:` and
//! `merged coverage digest:` lines; two invocations with the same
//! arguments print identical digests, which is what the CI
//! `fleet-determinism` and `throughput-smoke` jobs diff.

use std::sync::Arc;

use pdf_core::DriverConfig;
use pdf_fleet::{Fleet, FleetConfig};

fn string_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

fn flag_present(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

fn main() {
    let registry = Arc::new(pdf_obs::MetricsRegistry::new());
    let _metrics = pdf_obs::install(Arc::clone(&registry));
    let metrics_out = pdf_eval::metrics_out_from_args();

    let budget = pdf_eval::budget_from_args(40_000);
    let seed = budget.seeds.first().copied().unwrap_or(1);
    let shards = pdf_eval::require_arg(pdf_eval::shards_from_args());
    let per_shard = (budget.execs / shards as u64).max(1);
    let default_sync = (per_shard / 8).clamp(50, per_shard.max(50));
    let sync_every = pdf_eval::require_arg(pdf_eval::sync_every_from_args(default_sync));
    let subject_name = string_arg("--subject").unwrap_or_else(|| "mjs".to_string());
    let Some(info) = pdf_subjects::by_name(&subject_name) else {
        eprintln!("error: unknown subject {subject_name:?}");
        std::process::exit(2);
    };
    let checkpoint_dir = pdf_eval::checkpoint_dir_from_args();
    let stop_after = string_arg("--stop-after-epochs").map(|raw| {
        pdf_eval::require_arg(
            raw.parse::<u64>()
                .map_err(|_| format!("--stop-after-epochs expects an integer, got {raw:?}"))
                .and_then(|n| {
                    if n == 0 {
                        Err("--stop-after-epochs must be at least 1 (got 0)".to_string())
                    } else {
                        Ok(n)
                    }
                }),
        )
    });

    let exec_mode = pdf_eval::require_arg(pdf_eval::exec_mode_from_args());
    let base = DriverConfig {
        seed,
        max_execs: per_shard,
        exec_mode,
        ..DriverConfig::default()
    };
    let cfg = FleetConfig::new(shards, sync_every, base);
    let mut fleet = if flag_present("--resume") {
        let Some(dir) = checkpoint_dir.as_deref() else {
            eprintln!("error: --resume requires --checkpoint-dir");
            std::process::exit(2);
        };
        match Fleet::resume_from(info.subject, cfg, dir) {
            Ok(fleet) => {
                eprintln!(
                    "resumed fleet from {} at epoch {}",
                    dir.display(),
                    fleet.epoch()
                );
                fleet
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match Fleet::new(info.subject, cfg) {
            Ok(fleet) => fleet,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    };

    println!(
        "fleet: subject={} shards={shards} sync-every={sync_every} seed={seed} \
         mode={exec_mode:?} budget={} ({per_shard}/shard)",
        info.name, budget.execs
    );
    loop {
        let done = fleet.run_epoch();
        if let Some(dir) = checkpoint_dir.as_deref() {
            if let Err(e) = fleet.checkpoint_to(dir) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        if done {
            break;
        }
        if stop_after.is_some_and(|k| fleet.epoch() >= k) {
            println!(
                "paused after epoch {} ({} total execs); resume with --resume",
                fleet.epoch(),
                fleet.total_execs()
            );
            write_metrics(metrics_out.as_deref(), &registry);
            return;
        }
    }

    let report = fleet.into_report();
    for (i, shard) in report.shards.iter().enumerate() {
        println!(
            "  shard {i}: {} execs, {} valid inputs, {} valid branches",
            shard.execs,
            shard.valid_inputs.len(),
            shard.valid_branches.len()
        );
    }
    println!(
        "fleet totals: {} execs, {} epochs, {} promotions, {} injections, \
         {} distinct valid inputs, {} merged valid branches",
        report.total_execs,
        report.epochs,
        report.promotions,
        report.injections,
        report.valid_inputs.len(),
        report.valid_branches.len()
    );
    println!("fleet digest: {:016x}", report.digest());
    println!("merged coverage digest: {:016x}", report.coverage_digest());

    if flag_present("--compare") {
        let cmp = pdf_eval::fleet_vs_single(&info, per_shard, seed, shards, sync_every);
        let fmt = |side: &pdf_eval::FleetSide| {
            format!(
                "{} tokens | to single's count {} | to single's set {} | spent {}",
                side.tokens.len(),
                side.execs_to_count
                    .map_or_else(|| "never".to_string(), |e| e.to_string()),
                side.execs_to_cover
                    .map_or_else(|| "never".to_string(), |e| e.to_string()),
                side.total_execs
            )
        };
        println!(
            "compare ({} execs/shard, costs in total execs):",
            cmp.budget
        );
        println!("  single:      {}", fmt(&cmp.single));
        println!("  fleet:       {}", fmt(&cmp.fleet));
        println!("  independent: {}", fmt(&cmp.independent));
    }
    write_metrics(metrics_out.as_deref(), &registry);
}

fn write_metrics(path: Option<&std::path::Path>, registry: &pdf_obs::MetricsRegistry) {
    if let Some(path) = path {
        pdf_eval::write_metrics_snapshot(path, registry);
    }
}

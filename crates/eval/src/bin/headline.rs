//! Regenerates the Section 5.3 headline aggregates: token coverage for
//! short (<= 3) and long (> 3) tokens across all subjects.
//! Usage: headline [--execs N] [--seeds a,b,c]

fn main() {
    let budget = pdf_eval::budget_from_args(30_000);
    eprintln!(
        "running 5 subjects x 3 tools, {} execs x {} seeds ...",
        budget.execs,
        budget.seeds.len()
    );
    let outcomes = pdf_eval::run_matrix(&budget);
    print!(
        "{}",
        pdf_eval::render_headline(&pdf_eval::headline_aggregates(&outcomes))
    );
}

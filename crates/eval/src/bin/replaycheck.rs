//! End-to-end determinism check: records an evaluation matrix, round-
//! trips the journal through its text encoding, then re-executes every
//! cell and diffs the digests — pFuzzer cells are additionally replayed
//! from the recorded decision stream with no RNG at all.
//!
//! Usage: replaycheck [--execs N] [--seeds a,b,c] [--afl-mult N]
//!                    [--jobs N] [--record PATH] [--replay PATH]
//!                    [--resume-at N] [--metrics-out PATH] [--progress]
//!
//! With `--replay PATH` an existing journal is checked instead of
//! recording a fresh one. With `--record PATH` the recorded journal is
//! also written out. With `--resume-at N` an additional checkpoint
//! self-test runs first: every pFuzzer cell is paused after N
//! executions, checkpointed through the text codec, resumed, and its
//! final digest compared against the uninterrupted campaign. Exits 0
//! when every cell replays byte-identically, 1 on any divergence, 2 on
//! I/O or decode errors. `--metrics-out PATH` writes the final
//! `pdf-metrics v1` snapshot; `--progress` prints a live stderr ticker.
//! Both are observe-only and cannot change any digest.

use pdf_core::{CampaignBudget, Checkpoint, DriverConfig, Fuzzer};

/// Kill-and-resume determinism check over the matrix's pFuzzer cells.
/// Returns the number of cells whose resumed campaign diverged from the
/// uninterrupted one.
fn resume_selftest(pause_at: u64, budget: &pdf_eval::EvalBudget) -> usize {
    let cells: Vec<pdf_eval::MatrixCell> = pdf_eval::matrix_cells(budget)
        .into_iter()
        .filter(|c| c.tool == pdf_eval::Tool::PFuzzer)
        .collect();
    eprintln!(
        "resume self-test: {} pFuzzer cells paused at {} execs ...",
        cells.len(),
        pause_at,
    );
    let mut diverged = 0;
    for cell in cells {
        let cfg = DriverConfig {
            seed: cell.seed,
            max_execs: cell.execs,
            ..DriverConfig::default()
        };
        let straight = Fuzzer::new(cell.info.subject, cfg.clone()).run();
        let mut paused = Fuzzer::new(cell.info.subject, cfg.clone());
        paused.run_until(&CampaignBudget::execs(pause_at));
        let text = paused.checkpoint().encode();
        let resumed = Checkpoint::decode(&text)
            .map_err(|e| e.to_string())
            .and_then(|ck| {
                Fuzzer::resume_from_checkpoint(cell.info.subject, cfg, &ck)
                    .map_err(|e| e.to_string())
            });
        let mut resumed = match resumed {
            Ok(f) => f,
            Err(e) => {
                eprintln!("  {}/{}: checkpoint failed: {e}", cell.info.name, cell.seed);
                diverged += 1;
                continue;
            }
        };
        resumed.run_until(&CampaignBudget::unbounded());
        let report = resumed.into_report();
        if report.digest() != straight.digest() || report.valid_inputs != straight.valid_inputs {
            eprintln!(
                "  {}/{}: resumed digest {:016x} != uninterrupted {:016x}",
                cell.info.name,
                cell.seed,
                report.digest(),
                straight.digest()
            );
            diverged += 1;
        }
    }
    if diverged == 0 {
        eprintln!("resume self-test clean");
    }
    diverged
}

fn main() {
    let registry = std::sync::Arc::new(pdf_obs::MetricsRegistry::new());
    let _metrics = pdf_obs::install(std::sync::Arc::clone(&registry));
    let ticker = pdf_eval::progress_from_args()
        .then(|| pdf_eval::ProgressTicker::start(std::sync::Arc::clone(&registry)));
    let code = run();
    drop(ticker);
    if let Some(path) = pdf_eval::metrics_out_from_args() {
        pdf_eval::write_metrics_snapshot(&path, &registry);
    }
    std::process::exit(code);
}

fn run() -> i32 {
    let jobs = pdf_eval::require_arg(pdf_eval::jobs_from_args());
    if let Some(pause_at) = pdf_eval::resume_at_from_args() {
        let budget = pdf_eval::budget_from_args(2_000);
        if resume_selftest(pause_at, &budget) > 0 {
            eprintln!("resume self-test FAILED");
            return 1;
        }
    }
    let journal = match pdf_eval::replay_path_from_args() {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return 2;
                }
            };
            match pdf_runtime::Journal::decode(&text) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot decode {}: {e}", path.display());
                    return 2;
                }
            }
        }
        None => {
            let budget = pdf_eval::budget_from_args(2_000);
            let cells = pdf_eval::matrix_cells(&budget);
            eprintln!(
                "recording {} cells ({} execs x {} seeds, {} jobs) ...",
                cells.len(),
                budget.execs,
                budget.seeds.len(),
                jobs,
            );
            let (_, journal) = pdf_eval::record_cells(&cells, jobs);
            if let Some(path) = pdf_eval::record_path_from_args() {
                match std::fs::write(&path, journal.encode()) {
                    Ok(()) => eprintln!("journal written to {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return 2;
                    }
                }
            }
            // the text encoding must carry the recording losslessly
            match pdf_runtime::Journal::decode(&journal.encode()) {
                Ok(decoded) if decoded == journal => decoded,
                Ok(_) => {
                    eprintln!("journal text round-trip altered the recording");
                    return 2;
                }
                Err(e) => {
                    eprintln!("journal text round-trip failed: {e}");
                    return 2;
                }
            }
        }
    };
    eprintln!(
        "replaying {} cells ({} jobs) ...",
        journal.cells.len(),
        jobs
    );
    let report = pdf_eval::replay_journal(&journal, jobs);
    if report.is_clean() {
        eprintln!("replay clean: {} cells byte-identical", report.cells);
        return 0;
    }
    for d in &report.diffs {
        eprintln!("{}", d.describe());
    }
    eprintln!(
        "replay FAILED: {}/{} cells diverged",
        report.diffs.len(),
        report.cells
    );
    1
}

//! End-to-end determinism check: records an evaluation matrix, round-
//! trips the journal through its text encoding, then re-executes every
//! cell and diffs the digests — pFuzzer cells are additionally replayed
//! from the recorded decision stream with no RNG at all.
//!
//! Usage: replaycheck [--execs N] [--seeds a,b,c] [--afl-mult N]
//!                    [--jobs N] [--record PATH] [--replay PATH]
//!
//! With `--replay PATH` an existing journal is checked instead of
//! recording a fresh one. With `--record PATH` the recorded journal is
//! also written out. Exits 0 when every cell replays byte-identically,
//! 1 on any divergence, 2 on I/O or decode errors.

fn main() {
    let jobs = pdf_eval::jobs_from_args();
    let journal = match pdf_eval::replay_path_from_args() {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            match pdf_runtime::Journal::decode(&text) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot decode {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        None => {
            let budget = pdf_eval::budget_from_args(2_000);
            let cells = pdf_eval::matrix_cells(&budget);
            eprintln!(
                "recording {} cells ({} execs x {} seeds, {} jobs) ...",
                cells.len(),
                budget.execs,
                budget.seeds.len(),
                jobs,
            );
            let (_, journal) = pdf_eval::record_cells(&cells, jobs);
            if let Some(path) = pdf_eval::record_path_from_args() {
                match std::fs::write(&path, journal.encode()) {
                    Ok(()) => eprintln!("journal written to {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
            // the text encoding must carry the recording losslessly
            match pdf_runtime::Journal::decode(&journal.encode()) {
                Ok(decoded) if decoded == journal => decoded,
                Ok(_) => {
                    eprintln!("journal text round-trip altered the recording");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("journal text round-trip failed: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    eprintln!(
        "replaying {} cells ({} jobs) ...",
        journal.cells.len(),
        jobs
    );
    let report = pdf_eval::replay_journal(&journal, jobs);
    if report.is_clean() {
        eprintln!("replay clean: {} cells byte-identical", report.cells);
        std::process::exit(0);
    }
    for d in &report.diffs {
        eprintln!("{}", d.describe());
    }
    eprintln!(
        "replay FAILED: {}/{} cells diverged",
        report.diffs.len(),
        report.cells
    );
    std::process::exit(1);
}

//! Regenerates Table 1: the evaluation subjects.

fn main() {
    print!("{}", pdf_eval::render_table1(&pdf_eval::table1_subjects()));
}

//! Runs the complete evaluation once and prints every table and figure.
//! Usage: evalrunner [--execs N] [--seeds a,b,c] [--afl-mult N]
//!                   [--jobs N] [--exec-mode full|fast|tiered]
//!                   [--stats-out PATH]
//!                   [--record PATH] [--replay PATH]
//!                   [--max-retries N] [--chaos SEED]
//!                   [--metrics-out PATH] [--progress]
//!                   [--submit ADDR] [--shards N]
//!                   [--dict-out PATH] [--dict-in PATH]
//!                   [--grammar-out DIR] [--grammar-in DIR]
//!
//! `--jobs N` fans the (subject, tool, seed) matrix cells out over N
//! worker threads; results are identical to `--jobs 1`. `--stats-out`
//! writes one JSON line of run statistics per cell. `--record PATH`
//! writes a `pdf-journal v1` file recording every cell's decision
//! stream and outcome digest; `--replay PATH` re-executes a recorded
//! journal instead of running a fresh matrix, exits non-zero on any
//! digest mismatch, and prints nothing else. `--max-retries N` sets the
//! cell supervisor's retry budget for crashed or fuel-hung cells;
//! `--chaos SEED` runs the matrix on chaos-wrapped subjects (injected
//! panics, fuel burns, flaky rejections) to exercise the supervisor.
//!
//! `--exec-mode` selects the pFuzzer cells' instrumentation tiering:
//! `full` (default) runs every execution fully instrumented and is the
//! mode whose journals and digests define the byte-identical replay
//! contract; `fast` runs the near-zero-cost fast-failure sink and
//! escalates only valid inputs; `tiered` escalates the survivors of
//! the rejection-watermark/fingerprint filter. AFL and KLEE cells have
//! no instrumentation tiers and ignore the flag.
//!
//! `--submit ADDR` runs the pFuzzer side of the matrix as a service
//! client instead of in-process: one fleet campaign per
//! (subject, seed) — `--shards` shards each — is submitted over
//! `pdf-wire v1` to the `pdf-serve` daemon at `ADDR`, the runner waits
//! for every campaign to reach a terminal phase, and prints one result
//! row per campaign (phase, executions, valid inputs, report digest).
//! Exits non-zero if any campaign ends anywhere but `done`. AFL and
//! KLEE cells are not submitted — the daemon schedules pFuzzer fleets.
//!
//! `--dict-out PATH` runs the token-discovery pipeline instead of the
//! matrix: one mining pFuzzer campaign per subject (`--execs`
//! executions, first `--seeds` seed), a scorecard of how much of each
//! literal token inventory the miner recovered, and the union
//! dictionary written to `PATH` (`pdf-dict v1`). `--dict-in PATH` runs
//! the companion study: pFuzzer and AFL on the keyword-rich subjects
//! (tinyC, mjs), bare vs fed the dictionary at `PATH`, at equal
//! budgets, scored by short/long token coverage. See docs/TOKENS.md.
//!
//! `--grammar-out DIR` runs the grammar-mining pipeline instead of the
//! matrix: one combined three-stage campaign per subject (`--execs`
//! total executions, first `--seeds` seed) — pFuzzer explores, the
//! grammar miner generalizes, the compiled generator floods with
//! evolutionary weighting while a fleet keeps fuzzing — a scorecard of
//! each mined grammar, and the learned grammar + weights written to
//! `DIR/<subject>.grammar` (`pdf-grammar v1`). `--grammar-in DIR` runs
//! the companion study: on every subject with a grammar file under
//! `DIR`, pFuzzer alone vs the persisted-grammar flood vs the full
//! combined pipeline at equal budgets, scored by branch and Figure-3
//! token coverage. Both runs are seed-deterministic end to end: the
//! same arguments produce identical grammar files and digests.
//!
//! `--metrics-out PATH` writes the final campaign-wide metrics snapshot
//! (`pdf-metrics v1` text codec); `--progress` prints a live one-line
//! stderr ticker (execs/s, valid inputs, queue depth, poisoned cells)
//! about once per second. Both are observe-only: they read relaxed
//! atomic counters and never touch the fuzzers' random-byte chokepoint,
//! so enabling them cannot change any campaign result or replay digest.

use std::sync::Arc;

fn main() {
    let registry = Arc::new(pdf_obs::MetricsRegistry::new());
    let _metrics = pdf_obs::install(Arc::clone(&registry));
    let ticker = pdf_eval::progress_from_args()
        .then(|| pdf_eval::ProgressTicker::start(Arc::clone(&registry)));
    let metrics_out = pdf_eval::metrics_out_from_args();

    if let Some(path) = pdf_eval::replay_path_from_args() {
        let jobs = pdf_eval::require_arg(pdf_eval::jobs_from_args());
        let code = replay(&path, jobs);
        drop(ticker);
        write_metrics(metrics_out.as_deref(), &registry);
        std::process::exit(code);
    }
    if let Some(addr) = pdf_eval::submit_addr_from_args() {
        let budget = pdf_eval::budget_from_args(30_000);
        let exec_mode = pdf_eval::require_arg(pdf_eval::exec_mode_from_args());
        let shards = pdf_eval::require_arg(pdf_eval::shards_from_args());
        let code = submit_matrix(&addr, &budget, exec_mode, shards as u64);
        drop(ticker);
        write_metrics(metrics_out.as_deref(), &registry);
        std::process::exit(code);
    }
    if let Some(path) = pdf_eval::dict_out_from_args() {
        let budget = pdf_eval::budget_from_args(8_000);
        let code = mine_dictionaries(&path, budget.execs, budget.seeds[0]);
        drop(ticker);
        write_metrics(metrics_out.as_deref(), &registry);
        std::process::exit(code);
    }
    if let Some(path) = pdf_eval::dict_in_from_args() {
        let budget = pdf_eval::budget_from_args(8_000);
        let code = dict_study(&path, budget.execs, budget.seeds[0]);
        drop(ticker);
        write_metrics(metrics_out.as_deref(), &registry);
        std::process::exit(code);
    }
    if let Some(dir) = pdf_eval::grammar_out_from_args() {
        let budget = pdf_eval::budget_from_args(8_000);
        let code = mine_grammars(&dir, budget.execs, budget.seeds[0]);
        drop(ticker);
        write_metrics(metrics_out.as_deref(), &registry);
        std::process::exit(code);
    }
    if let Some(dir) = pdf_eval::grammar_in_from_args() {
        let budget = pdf_eval::budget_from_args(8_000);
        let code = grammar_study(&dir, budget.execs, budget.seeds[0]);
        drop(ticker);
        write_metrics(metrics_out.as_deref(), &registry);
        std::process::exit(code);
    }
    let budget = pdf_eval::budget_from_args(30_000);
    let jobs = pdf_eval::require_arg(pdf_eval::jobs_from_args());
    let sup = pdf_eval::supervisor_from_args();
    let chaos_seed = pdf_eval::chaos_seed_from_args();
    let exec_mode = pdf_eval::require_arg(pdf_eval::exec_mode_from_args());
    let stats_out = pdf_eval::stats_out_from_args();
    let record_out = pdf_eval::record_path_from_args();
    if record_out.is_some() && exec_mode != pdf_core::ExecMode::Full {
        eprintln!(
            "warning: recording under --exec-mode {exec_mode:?}; journals replay \
             under full instrumentation and will diverge"
        );
    }
    println!("{}", pdf_eval::render_table1(&pdf_eval::table1_subjects()));
    for inv in pdf_eval::token_tables() {
        println!("{}", pdf_eval::render_token_table(&inv));
    }
    let mut cells = match chaos_seed {
        Some(seed) => {
            let cfg = pdf_subjects::chaos::ChaosConfig::stormy(seed);
            eprintln!("chaos mode: subjects wrapped with {cfg:?}");
            pdf_eval::matrix_cells_for(
                &pdf_subjects::chaos::chaos_evaluation_subjects(cfg),
                &budget,
            )
        }
        None => pdf_eval::matrix_cells(&budget),
    };
    for cell in &mut cells {
        cell.exec_mode = exec_mode;
    }
    eprintln!(
        "running 5 subjects x 3 tools, {} execs x {} seeds ({} cells, {} jobs, {} retries) ...",
        budget.execs,
        budget.seeds.len(),
        cells.len(),
        jobs,
        sup.max_retries,
    );
    let per_cell = pdf_eval::run_cells_supervised(&cells, jobs, &sup);
    drop(ticker);
    println!("{}", pdf_eval::render_supervision(&per_cell));
    if let Some(path) = &record_out {
        let journal = pdf_eval::journal_of(&cells, &per_cell);
        match std::fs::write(path, journal.encode()) {
            Ok(()) => eprintln!(
                "recorded {} cells to {}",
                journal.cells.len(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    let completed = pdf_eval::completed_outcomes(per_cell);
    if let Some(path) = &stats_out {
        let mut lines = String::new();
        for o in &completed {
            lines.push_str(&pdf_eval::stats_json_line(o));
            lines.push('\n');
        }
        match std::fs::write(path, lines) {
            Ok(()) => eprintln!(
                "wrote {} stats lines to {}",
                completed.len(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    let outcomes = pdf_eval::collapse_matrix(completed);
    println!(
        "{}",
        pdf_eval::render_fig2(&pdf_eval::fig2_coverage(&outcomes))
    );
    println!(
        "{}",
        pdf_eval::render_fig3(&pdf_eval::fig3_tokens(&outcomes))
    );
    println!(
        "{}",
        pdf_eval::render_headline(&pdf_eval::headline_aggregates(&outcomes))
    );
    write_metrics(metrics_out.as_deref(), &registry);
}

fn write_metrics(path: Option<&std::path::Path>, registry: &pdf_obs::MetricsRegistry) {
    if let Some(path) = path {
        pdf_eval::write_metrics_snapshot(path, registry);
    }
}

fn mine_dictionaries(path: &std::path::Path, execs: u64, seed: u64) -> i32 {
    let subjects = pdf_subjects::evaluation_subjects();
    eprintln!(
        "mining dictionaries: {} subjects, {execs} execs each, seed {seed} ...",
        subjects.len()
    );
    let (dict, rows) = pdf_eval::mine_union_dictionary(execs, seed);
    println!("{}", pdf_eval::render_mined_inventory(&rows));
    match dict.save(path) {
        Ok(()) => {
            eprintln!("wrote {} tokens to {}", dict.len(), path.display());
            0
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            2
        }
    }
}

fn dict_study(path: &std::path::Path, execs: u64, seed: u64) -> i32 {
    let dict = match pdf_tokens::Dictionary::load(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot load dictionary {}: {e}", path.display());
            return 2;
        }
    };
    eprintln!(
        "dictionary study: {} tokens, {execs} execs per run, seed {seed} ...",
        dict.len()
    );
    let mut rows = Vec::new();
    for name in ["tinyC", "mjs"] {
        let info = pdf_subjects::by_name(name).expect("study subjects exist");
        rows.extend(pdf_eval::dict_vs_baseline(&info, &dict, execs, seed));
    }
    println!("{}", pdf_eval::render_dict_study(&rows));
    0
}

fn mine_grammars(dir: &std::path::Path, execs: u64, seed: u64) -> i32 {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return 2;
    }
    let subjects = pdf_subjects::evaluation_subjects();
    eprintln!(
        "mining grammars: {} subjects, {execs} execs each, seed {seed} ...",
        subjects.len()
    );
    let mut rows = Vec::new();
    let mut written = 0usize;
    for info in &subjects {
        let (file, row) = pdf_eval::mine_subject_grammar(info, execs, seed);
        if let Some(file) = file {
            let path = dir.join(format!("{}.grammar", info.name));
            if let Err(e) = file.save(&path) {
                eprintln!("failed to write {}: {e}", path.display());
                return 2;
            }
            written += 1;
        }
        rows.push(row);
    }
    println!("{}", pdf_eval::render_grammar_mine(&rows));
    eprintln!(
        "wrote {written}/{} grammar files to {}",
        subjects.len(),
        dir.display()
    );
    0
}

fn grammar_study(dir: &std::path::Path, execs: u64, seed: u64) -> i32 {
    let mut rows = Vec::new();
    let mut loaded = 0usize;
    for info in pdf_subjects::evaluation_subjects() {
        let path = dir.join(format!("{}.grammar", info.name));
        if !path.exists() {
            continue;
        }
        let file = match pdf_grammar::GrammarFile::load(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot load grammar {}: {e}", path.display());
                return 2;
            }
        };
        loaded += 1;
        eprintln!(
            "grammar study: {} ({} rules, {execs} execs per run, seed {seed}) ...",
            info.name,
            file.grammar().len()
        );
        rows.extend(pdf_eval::grammar_vs_baseline(&info, &file, execs, seed));
    }
    if loaded == 0 {
        eprintln!("no <subject>.grammar files under {}", dir.display());
        return 2;
    }
    println!("{}", pdf_eval::render_grammar_study(&rows));
    0
}

fn submit_matrix(
    addr: &str,
    budget: &pdf_eval::EvalBudget,
    exec_mode: pdf_core::ExecMode,
    shards: u64,
) -> i32 {
    // Submissions ride the retrying client: shed hints and dropped
    // connections are absorbed with backoff, and the auto idempotency
    // key keeps a resubmit-after-lost-reply from forking a duplicate
    // campaign.
    let mut client = pdf_serve::RetryClient::new(addr);
    if let Err(e) = client.ping() {
        eprintln!("cannot reach pdf-serve daemon at {addr}: {e}");
        return 2;
    }
    let subjects = pdf_subjects::evaluation_subjects();
    eprintln!(
        "submitting {} subjects x {} seeds ({} execs, {} shard(s) each) to {addr} ...",
        subjects.len(),
        budget.seeds.len(),
        budget.execs,
        shards,
    );
    let mut ids: Vec<(u64, String, u64)> = Vec::new();
    for info in &subjects {
        for &seed in &budget.seeds {
            let spec = pdf_serve::CampaignSpec {
                shards,
                sync_every: pdf_serve::default_sync_every(budget.execs, shards),
                exec_mode,
                ..pdf_serve::CampaignSpec::new(info.name, seed, budget.execs)
            };
            match client.submit(&spec) {
                Ok(id) => ids.push((id, info.name.to_string(), seed)),
                Err(e) => {
                    eprintln!("submit {}/{seed} refused: {e}", info.name);
                    return 2;
                }
            }
        }
    }
    let mut failures = 0u64;
    println!("| id | subject | seed | state | execs | valid | digest |");
    println!("|---:|---------|-----:|-------|------:|------:|--------|");
    for (id, subject, seed) in &ids {
        let status = match client.wait_terminal(*id, std::time::Duration::from_secs(600)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("waiting on campaign {id}: {e}");
                return 2;
            }
        };
        if status.phase != pdf_serve::Phase::Done {
            failures += 1;
        }
        println!(
            "| {id} | {subject} | {seed} | {} | {} | {} | {} |",
            status.phase,
            status.spent,
            status.valid,
            status
                .digest
                .map_or_else(|| "-".to_string(), |d| format!("{d:016x}")),
        );
    }
    if failures > 0 {
        eprintln!("{failures}/{} campaigns did not finish cleanly", ids.len());
        1
    } else {
        eprintln!("all {} campaigns done", ids.len());
        0
    }
}

fn replay(path: &std::path::Path, jobs: usize) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let journal = match pdf_runtime::Journal::decode(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot decode {}: {e}", path.display());
            return 2;
        }
    };
    eprintln!(
        "replaying {} recorded cells from {} ({} jobs) ...",
        journal.cells.len(),
        path.display(),
        jobs,
    );
    let report = pdf_eval::replay_journal(&journal, jobs);
    if report.is_clean() {
        eprintln!("replay clean: {} cells byte-identical", report.cells);
        0
    } else {
        for d in &report.diffs {
            eprintln!("{}", d.describe());
        }
        eprintln!(
            "replay FAILED: {}/{} cells diverged",
            report.diffs.len(),
            report.cells
        );
        1
    }
}

//! Runs the complete evaluation once and prints every table and figure.
//! Usage: evalrunner [--execs N] [--seeds a,b,c]

fn main() {
    let budget = pdf_eval::budget_from_args(30_000);
    println!("{}", pdf_eval::render_table1(&pdf_eval::table1_subjects()));
    for inv in pdf_eval::token_tables() {
        println!("{}", pdf_eval::render_token_table(&inv));
    }
    eprintln!(
        "running 5 subjects x 3 tools, {} execs x {} seeds ...",
        budget.execs,
        budget.seeds.len()
    );
    let outcomes = pdf_eval::run_matrix(&budget);
    println!("{}", pdf_eval::render_fig2(&pdf_eval::fig2_coverage(&outcomes)));
    println!("{}", pdf_eval::render_fig3(&pdf_eval::fig3_tokens(&outcomes)));
    println!("{}", pdf_eval::render_headline(&pdf_eval::headline_aggregates(&outcomes)));
}

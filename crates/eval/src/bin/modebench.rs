//! Coverage-vs-throughput comparison of the three execution modes.
//! Usage: modebench [--execs N] [--seeds S] [--subject NAME]
//!                  [--exec-mode full|fast|tiered]
//!
//! Runs the pFuzzer driver on every evaluation subject (or just
//! `--subject NAME`) under each of `full`, `fast` and `tiered`
//! execution modes (or just `--exec-mode MODE`, matched
//! case-insensitively) with the same seed and execution budget, and prints
//! one markdown table row per (subject, mode): valid inputs found,
//! branches covered by valid inputs, total branches, wall-clock time
//! and executions per second. The numbers feed the EXPERIMENTS.md
//! "Execution tiers" table.
//!
//! Coverage columns are deterministic per `(subject, seed, execs)`;
//! the time and execs/s columns are wall-clock measurements and vary
//! with the machine.

use std::time::Instant;

use pdf_core::{DriverConfig, ExecMode, Fuzzer};

fn main() {
    let budget = pdf_eval::budget_from_args(20_000);
    let seed = budget.seeds.first().copied().unwrap_or(1);
    let modes: Vec<ExecMode> = if std::env::args().any(|a| a == "--exec-mode") {
        vec![pdf_eval::require_arg(pdf_eval::exec_mode_from_args())]
    } else {
        vec![ExecMode::Full, ExecMode::Fast, ExecMode::Tiered]
    };
    let subjects: Vec<pdf_subjects::SubjectInfo> = match std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--subject")
        .map(|w| w[1].clone())
    {
        Some(name) => match pdf_subjects::by_name(&name) {
            Some(info) => vec![info],
            None => {
                eprintln!("error: unknown subject {name:?}");
                std::process::exit(2);
            }
        },
        None => pdf_subjects::evaluation_subjects(),
    };

    println!(
        "modebench: {} execs, seed {seed} (coverage columns deterministic, \
         time columns machine-dependent)",
        budget.execs
    );
    println!("| subject | mode | valid | valid br | all br | time (s) | execs/s |");
    println!("|---------|------|------:|---------:|-------:|---------:|--------:|");
    for info in &subjects {
        for &mode in &modes {
            let cfg = DriverConfig {
                seed,
                max_execs: budget.execs,
                exec_mode: mode,
                ..DriverConfig::default()
            };
            let start = Instant::now();
            let r = Fuzzer::new(info.subject, cfg).run();
            let secs = start.elapsed().as_secs_f64();
            let rate = r.execs as f64 / secs.max(1e-9);
            println!(
                "| {} | {} | {} | {} | {} | {:.2} | {:.0} |",
                info.name,
                mode_name(mode),
                r.valid_inputs.len(),
                r.valid_branches.len(),
                r.all_branches.len(),
                secs,
                rate,
            );
        }
    }
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Full => "full",
        ExecMode::Fast => "fast",
        ExecMode::Tiered => "tiered",
    }
}

//! The "fewer tests by orders of magnitude" measurement: executions
//! needed per multi-character token, per subject and tool.
//! Usage: discovery [--execs N] [--seeds a,b,c] [--afl-mult N]

fn main() {
    let budget = pdf_eval::budget_from_args(30_000);
    eprintln!(
        "running 5 subjects x 3 tools, {} execs x {} seeds ...",
        budget.execs,
        budget.seeds.len()
    );
    let outcomes = pdf_eval::run_matrix(&budget);
    print!(
        "{}",
        pdf_eval::render_discovery(&pdf_eval::token_discovery(&outcomes))
    );
}

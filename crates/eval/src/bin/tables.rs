//! Regenerates Tables 2-4 (and the ini/csv inventories): tokens per
//! subject, by length.

fn main() {
    for inv in pdf_eval::token_tables() {
        println!("{}", pdf_eval::render_token_table(&inv));
    }
}

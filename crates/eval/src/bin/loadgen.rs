//! Bounded-burst load generator for `pdf-serve`; the CI `serve-soak`
//! job's latency gate and the `chaos-recovery` job's overload gate.
//! Usage: loadgen [--addr HOST:PORT] [--campaigns N] [--execs N]
//!                [--workers N] [--shards N] [--subject NAME]
//!                [--deadline-ms N] [--seed N] [--max-queued N]
//!                [--expect-sheds]
//!
//! Submits a burst of `--campaigns` small fleet campaigns (default 12,
//! `--execs` executions each, default 400) to a `pdf-serve` daemon and
//! waits for all of them. Without `--addr` it spins up an in-process
//! daemon (`--workers` pool slots, default 4, queue capped at
//! `--max-queued` when given) plus a loopback TCP server and talks to
//! itself over real sockets, so one binary exercises the full wire
//! path. Subjects rotate over the evaluation set unless pinned with
//! `--subject`.
//!
//! Submissions go through a [`RetryClient`]: when the daemon sheds
//! load (`err code=overloaded retry-after-ms=N`) the client backs off
//! per the hint and resubmits under the same idempotency key, so an
//! overloaded daemon slows the burst down instead of hanging or
//! forking duplicates. The summary reports how many sheds were
//! absorbed; `--expect-sheds` makes *zero* sheds a failure (exit 1) —
//! the overload gate proves shedding actually fires.
//!
//! Every campaign carries `--deadline-ms` (default 30000) as its
//! advisory deadline. The gate: a campaign whose submit-to-terminal
//! wall time exceeds **2x** its deadline is a violation, as is any
//! campaign that ends `failed` or `cancelled`. Exit status 0 when the
//! whole burst passes, 1 on any violation, 2 on usage or transport
//! errors. Wall times are machine-dependent; the default deadline is
//! sized so only a wedged scheduler (a lost wakeup, a leaked pool
//! slot) trips the gate, not a slow machine.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pdf_serve::{CampaignSpec, Daemon, DaemonConfig, Phase, RetryClient, Server};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let campaigns = pdf_eval::require_arg(pdf_eval::positive_arg_in(&args, "--campaigns", 12));
    let execs = pdf_eval::require_arg(pdf_eval::positive_arg_in(&args, "--execs", 400));
    let workers = pdf_eval::require_arg(pdf_eval::positive_arg_in(&args, "--workers", 4));
    let shards = pdf_eval::require_arg(pdf_eval::positive_arg_in(&args, "--shards", 1));
    let deadline_ms =
        pdf_eval::require_arg(pdf_eval::positive_arg_in(&args, "--deadline-ms", 30_000));
    let base_seed = pdf_eval::require_arg(pdf_eval::positive_arg_in(&args, "--seed", 1));
    let exec_mode = pdf_eval::require_arg(pdf_eval::exec_mode_in(&args));
    let pinned = string_arg(&args, "--subject");
    let remote = string_arg(&args, "--addr");
    let max_queued = match pdf_eval::positive_arg_in(&args, "--max-queued", 0) {
        Ok(0) => None,
        Ok(n) => Some(n as usize),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let expect_sheds = args.iter().any(|a| a == "--expect-sheds");

    let subjects: Vec<String> = match &pinned {
        Some(name) => vec![name.clone()],
        None => pdf_subjects::evaluation_subjects()
            .iter()
            .map(|info| info.name.to_string())
            .collect(),
    };

    // Without --addr, stand up the whole service in-process and talk to
    // it over a real loopback socket.
    let local = if remote.is_none() {
        let mut cfg = DaemonConfig::in_memory(workers as usize);
        if let Some(cap) = max_queued {
            cfg = cfg.with_max_queued(cap);
        }
        let daemon = Arc::new(Daemon::open(cfg).expect("in-memory daemon"));
        let server = Server::start(Arc::clone(&daemon), "127.0.0.1:0").unwrap_or_else(|e| {
            eprintln!("error: cannot bind loopback server: {e}");
            std::process::exit(2);
        });
        Some((daemon, server))
    } else {
        None
    };
    let addr = match (&remote, &local) {
        (Some(a), _) => a.clone(),
        (None, Some((_, server))) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let mut client = RetryClient::new(&addr);
    if let Err(e) = client.ping() {
        eprintln!("error: cannot reach {addr}: {e} (connection refused? check that pdfserved is running there)");
        std::process::exit(2);
    }

    eprintln!(
        "loadgen: burst of {campaigns} campaigns ({execs} execs x {shards} shard(s) each, \
         deadline {deadline_ms}ms, gate 2x) against {addr}"
    );
    let burst_start = Instant::now();
    let mut submitted: Vec<(u64, String, u64, Instant)> = Vec::new();
    for i in 0..campaigns {
        let subject = subjects[(i % subjects.len() as u64) as usize].clone();
        let seed = base_seed + i;
        let spec = CampaignSpec {
            shards,
            sync_every: pdf_serve::default_sync_every(execs, shards),
            exec_mode,
            deadline_ms: Some(deadline_ms),
            ..CampaignSpec::new(&subject, seed, execs)
        };
        match client.submit(&spec) {
            Ok(id) => submitted.push((id, subject, seed, Instant::now())),
            Err(e) => {
                eprintln!("error: submit {subject}/{seed} refused after retries: {e}");
                std::process::exit(2);
            }
        }
    }
    let sheds_absorbed = client.sheds();

    let allowance = Duration::from_millis(deadline_ms.saturating_mul(2));
    let mut violations = 0u64;
    println!("| id | subject | seed | state | elapsed (ms) | allowed (ms) | verdict |");
    println!("|---:|---------|-----:|-------|-------------:|-------------:|---------|");
    for (id, subject, seed, started) in &submitted {
        let wait = allowance.saturating_sub(started.elapsed()) + Duration::from_millis(250);
        let status = match client.wait_terminal(*id, wait) {
            Ok(s) => Some(s),
            Err(pdf_serve::ClientError::Timeout) => None,
            Err(e) => {
                eprintln!(
                    "error: lost {addr} while waiting on campaign {id}: {e} (retries exhausted)"
                );
                std::process::exit(2);
            }
        };
        let elapsed = started.elapsed();
        let (state, ok) = match &status {
            None => ("timeout".to_string(), false),
            Some(s) => (s.phase.to_string(), s.phase == Phase::Done),
        };
        let within = elapsed <= allowance;
        let pass = ok && within;
        if !pass {
            violations += 1;
        }
        println!(
            "| {id} | {subject} | {seed} | {state} | {} | {} | {} |",
            elapsed.as_millis(),
            allowance.as_millis(),
            if pass { "ok" } else { "VIOLATION" },
        );
    }

    if let Some((daemon, mut server)) = local {
        let _ = client.with_client(|c| c.shutdown());
        server.stop();
        daemon.shutdown();
        assert_eq!(daemon.busy_slots(), 0, "pool slots leaked after burst");
    }
    eprintln!(
        "loadgen: {} campaigns, {} violation(s), {} shed(s) absorbed, burst wall time {}ms",
        submitted.len(),
        violations,
        sheds_absorbed,
        burst_start.elapsed().as_millis(),
    );
    if expect_sheds && sheds_absorbed == 0 {
        eprintln!("loadgen: --expect-sheds but the daemon never shed; overload path did not fire");
        std::process::exit(1);
    }
    if violations > 0 {
        std::process::exit(1);
    }
}

fn string_arg(args: &[String], flag: &str) -> Option<String> {
    for i in 1..args.len() {
        if args[i] == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

//! Regenerates the Figure 1 walkthrough: pFuzzer assembling its first
//! valid arithmetic expression, step by step.

fn main() {
    let (trace, first) = pdf_eval::fig1_walkthrough(1, 10_000);
    println!("Figure 1 walkthrough (arith subject, seed 1):");
    for (i, step) in trace.iter().enumerate() {
        let verdict = if step.valid {
            "valid"
        } else if step.eof {
            "rejected@EOF"
        } else {
            "rejected"
        };
        println!(
            "  step {i:>3}: {:<24} {:<13} candidates={:<3} ({})",
            format!("{:?}", String::from_utf8_lossy(&step.input)),
            verdict,
            step.candidates,
            step.action
        );
    }
    match first {
        Some(input) => println!("first valid input: {:?}", String::from_utf8_lossy(&input)),
        None => println!("no valid input found within the budget"),
    }
}

//! Live campaign progress: a background thread that samples the
//! installed [`pdf_obs::MetricsRegistry`] about once per second and
//! prints a one-line ticker to stderr.
//!
//! The ticker only *reads* relaxed atomic counters — it never touches
//! the fuzzer's random-byte chokepoint or any campaign state, so
//! enabling `--progress` cannot perturb a recorded run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Background stderr ticker over a shared metrics registry.
///
/// Construct with [`ProgressTicker::start`]; the reporting thread stops
/// and is joined when the ticker is dropped (printing one final line so
/// short runs still produce output).
pub struct ProgressTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressTicker {
    /// Spawns the ticker thread sampling `registry` roughly once per
    /// second until the returned handle is dropped.
    pub fn start(registry: Arc<pdf_obs::MetricsRegistry>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut last_execs = 0u64;
            let mut last_tick = started;
            loop {
                let stopping = stop2.load(Ordering::Relaxed);
                let now = Instant::now();
                let execs = registry.execs.get();
                let dt = now.duration_since(last_tick).as_secs_f64();
                let rate = if dt > 0.0 {
                    (execs.saturating_sub(last_execs)) as f64 / dt
                } else {
                    0.0
                };
                eprintln!(
                    "[progress +{:>4}s] execs {execs} ({rate:.0}/s) | valid {} | new branches {} | queue {} | cells {} done / {} poisoned / {} retried",
                    started.elapsed().as_secs(),
                    registry.valid_inputs.get(),
                    registry.new_branches.get(),
                    registry.queue_depth_now.get(),
                    registry.cells_completed.get(),
                    registry.cells_poisoned.get(),
                    registry.cell_retries.get(),
                );
                if stopping {
                    break;
                }
                last_execs = execs;
                last_tick = now;
                // Sleep in short slices so drop() never waits a full second.
                for _ in 0..10 {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        });
        ProgressTicker {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_starts_and_stops_cleanly() {
        let reg = Arc::new(pdf_obs::MetricsRegistry::default());
        reg.execs.add(42);
        let ticker = ProgressTicker::start(Arc::clone(&reg));
        drop(ticker); // must join without hanging
    }
}

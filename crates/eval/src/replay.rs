//! Record/replay bridge between the evaluation matrix and the
//! [`Journal`] format of `pdf-runtime`.
//!
//! Recording runs matrix cells as usual and writes one [`CellRecord`]
//! per cell: identity (tool, subject, seed, budget), the tool's
//! configuration hash, the decision stream (explicit bytes for pFuzzer,
//! draw count + stream digest for the baselines) and a digest over the
//! deterministic outcome fields.
//!
//! Replaying re-executes every recorded cell and diffs the digests. For
//! pFuzzer cells the recorded byte stream is additionally fed back
//! through [`Fuzzer::replaying`], proving the journal alone — no RNG —
//! reproduces the campaign byte for byte.

use pdf_core::{DriverConfig, Fuzzer};
use pdf_runtime::{CellRecord, Journal};

use crate::runner::{outcome_digest, pfuzzer_outcome, run_cells, CellOutcome, MatrixCell, Tool};

/// The configuration hash a matrix cell runs under.
/// [`run_tool_seeded`](crate::run_tool_seeded) builds each tool's
/// config from its default
/// with only seed and budget overridden, and those two are stored in
/// the journal cell itself — so the hash is a function of the tool
/// alone.
pub fn cell_config_hash(tool: Tool) -> u64 {
    match tool {
        Tool::PFuzzer => DriverConfig::default().config_hash(),
        // The fleet derives its shape (shards, sync interval, per-shard
        // budget) from the cell's execs and seed, so mixing the shard
        // count into the driver hash pins down everything that is not
        // already in the journal cell.
        Tool::PFuzzerFleet => {
            let mut d = pdf_runtime::Digest::new();
            d.write_str("fleet");
            d.write_u64(crate::runner::FLEET_SHARDS as u64);
            d.write_u64(DriverConfig::default().config_hash());
            d.finish()
        }
        Tool::Afl => pdf_afl::AflConfig::default().config_hash(),
        Tool::Klee => pdf_symbolic::KleeConfig::default().config_hash(),
        // Like the fleet, the combined pipeline derives its whole shape
        // (stage split, shards, generator epochs) from (execs, seed) —
        // hash the underlying driver config plus a tag for the derive.
        Tool::GrammarGen => {
            let mut d = pdf_runtime::Digest::new();
            d.write_str("grammar-gen");
            d.write_u64(DriverConfig::default().config_hash());
            d.finish()
        }
    }
}

/// Builds the journal for a list of cells and their supervised outcomes
/// (parallel slices, as produced by [`matrix_cells`](crate::matrix_cells)
/// and [`run_cells`]). The cell's `execs` is the *budget*, needed to
/// re-run the campaign; the outcome's spent executions are covered by
/// the outcome digest. Poisoned cells have no reproducible outcome to
/// record and are skipped; a cell completed after retries is recorded
/// under the seed it *actually ran with*, so replaying the journal
/// re-runs that attempt directly.
pub fn journal_of(cells: &[MatrixCell], outcomes: &[CellOutcome]) -> Journal {
    assert_eq!(
        cells.len(),
        outcomes.len(),
        "cells and outcomes must pair up"
    );
    let records = cells
        .iter()
        .zip(outcomes)
        .filter_map(|(c, co)| co.outcome().map(|o| (c, o)))
        .map(|(c, o)| CellRecord {
            tool: o.tool.name().to_string(),
            subject: o.subject.to_string(),
            seed: o.seed,
            execs: c.execs,
            config_hash: cell_config_hash(o.tool),
            decision_count: o.stats.decisions,
            decision_digest: o.stats.decision_digest,
            decisions: o.decisions.clone(),
            outcome_digest: outcome_digest(o),
        })
        .collect();
    Journal { cells: records }
}

/// Runs every cell under the supervisor and returns the cell outcomes
/// together with the journal recording the completed ones.
pub fn record_cells(cells: &[MatrixCell], jobs: usize) -> (Vec<CellOutcome>, Journal) {
    let outcomes = run_cells(cells, jobs);
    let journal = journal_of(cells, &outcomes);
    (outcomes, journal)
}

/// One replayed cell that failed to reproduce its recording.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Recorded tool name.
    pub tool: String,
    /// Recorded subject name.
    pub subject: String,
    /// Recorded seed.
    pub seed: u64,
    /// Human-readable descriptions of every field that diverged.
    pub mismatches: Vec<String>,
}

impl CellDiff {
    /// One line per mismatch, prefixed with the cell identity.
    pub fn describe(&self) -> String {
        self.mismatches
            .iter()
            .map(|m| format!("{}/{} seed {}: {}", self.tool, self.subject, self.seed, m))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The result of replaying a journal.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Number of recorded cells examined.
    pub cells: usize,
    /// Cells whose replay diverged from the recording (empty on a
    /// faithful replay).
    pub diffs: Vec<CellDiff>,
}

impl ReplayReport {
    /// True when every cell replayed byte-identically.
    pub fn is_clean(&self) -> bool {
        self.diffs.is_empty()
    }
}

fn diff(rec: &CellRecord, mismatches: Vec<String>) -> CellDiff {
    CellDiff {
        tool: rec.tool.clone(),
        subject: rec.subject.clone(),
        seed: rec.seed,
        mismatches,
    }
}

/// Re-executes every cell of a recorded journal and diffs the result
/// against the recording. Configuration drift (unknown tool or subject,
/// changed config hash) is reported without re-running the cell —
/// replaying a pFuzzer decision stream against a drifted driver would
/// consume it wrongly rather than fail cleanly.
pub fn replay_journal(journal: &Journal, jobs: usize) -> ReplayReport {
    let mut diffs = Vec::new();
    let mut runnable: Vec<(&CellRecord, MatrixCell)> = Vec::new();
    for rec in &journal.cells {
        let Some(tool) = Tool::from_name(&rec.tool) else {
            diffs.push(diff(rec, vec![format!("unknown tool {:?}", rec.tool)]));
            continue;
        };
        let Some(info) = pdf_subjects::by_name(&rec.subject) else {
            diffs.push(diff(
                rec,
                vec![format!("unknown subject {:?}", rec.subject)],
            ));
            continue;
        };
        let want = cell_config_hash(tool);
        if want != rec.config_hash {
            diffs.push(diff(
                rec,
                vec![format!(
                    "config hash drifted: recorded {:016x}, current {:016x}",
                    rec.config_hash, want
                )],
            ));
            continue;
        }
        runnable.push((
            rec,
            // Journals are recorded (and warned about otherwise) under
            // full instrumentation — the mode whose journal encodings
            // and digests are the replay contract.
            MatrixCell {
                info,
                tool,
                execs: rec.execs,
                seed: rec.seed,
                exec_mode: pdf_core::ExecMode::Full,
            },
        ));
    }

    let cells: Vec<MatrixCell> = runnable.iter().map(|(_, c)| *c).collect();
    let outcomes = run_cells(&cells, jobs);
    for ((rec, cell), co) in runnable.iter().zip(&outcomes) {
        let o = match co {
            CellOutcome::Completed(o) => o,
            CellOutcome::Poisoned(p) => {
                // The recording completed this cell; a replay that can't
                // even finish it is the starkest possible divergence.
                diffs.push(diff(
                    rec,
                    vec![format!(
                        "cell poisoned during replay after {} attempts: {}",
                        p.attempts, p.reason
                    )],
                ));
                continue;
            }
        };
        let mut mismatches = Vec::new();
        if o.stats.decisions != rec.decision_count {
            mismatches.push(format!(
                "decision count: recorded {}, replayed {}",
                rec.decision_count, o.stats.decisions
            ));
        }
        if o.stats.decision_digest != rec.decision_digest {
            mismatches.push(format!(
                "decision digest: recorded {:016x}, replayed {:016x}",
                rec.decision_digest, o.stats.decision_digest
            ));
        }
        if o.decisions != rec.decisions {
            mismatches.push(format!(
                "decision stream: recorded {} bytes, replayed {} bytes (or contents differ)",
                rec.decisions.len(),
                o.decisions.len()
            ));
        }
        let fresh = outcome_digest(o);
        if fresh != rec.outcome_digest {
            mismatches.push(format!(
                "outcome digest: recorded {:016x}, replayed {:016x}",
                rec.outcome_digest, fresh
            ));
        }
        // The strongest check: drive the pFuzzer campaign *from the
        // journal's byte stream* instead of an RNG. Only attempted when
        // the stream itself already matched — feeding a diverged stream
        // into the driver would panic on exhaustion instead of diffing.
        if cell.tool == Tool::PFuzzer && o.decisions == rec.decisions {
            let cfg = DriverConfig {
                seed: rec.seed,
                max_execs: rec.execs,
                ..DriverConfig::default()
            };
            let r = Fuzzer::replaying(cell.info.subject, cfg, rec.decisions.clone()).run();
            let replayed = pfuzzer_outcome(cell.info.name, rec.seed, r);
            let stream_digest = outcome_digest(&replayed);
            if stream_digest != rec.outcome_digest {
                mismatches.push(format!(
                    "stream replay digest: recorded {:016x}, replayed {:016x}",
                    rec.outcome_digest, stream_digest
                ));
            }
        }
        if !mismatches.is_empty() {
            diffs.push(diff(rec, mismatches));
        }
    }
    ReplayReport {
        cells: journal.cells.len(),
        diffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{matrix_cells, EvalBudget};

    fn small_budget() -> EvalBudget {
        EvalBudget {
            execs: 300,
            seeds: vec![1],
            afl_throughput: 1,
        }
    }

    fn small_cells() -> Vec<MatrixCell> {
        matrix_cells(&small_budget())
            .into_iter()
            .filter(|c| c.info.name == "csv" || c.info.name == "ini")
            .collect()
    }

    #[test]
    fn record_then_replay_is_clean() {
        let cells = small_cells();
        let (_, journal) = record_cells(&cells, 2);
        assert_eq!(journal.cells.len(), cells.len());
        let report = replay_journal(&journal, 2);
        assert_eq!(report.cells, cells.len());
        assert!(
            report.is_clean(),
            "{}",
            report
                .diffs
                .iter()
                .map(CellDiff::describe)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn journal_round_trips_through_text() {
        let cells = small_cells();
        let (_, journal) = record_cells(&cells, 1);
        let decoded = Journal::decode(&journal.encode()).expect("decodes");
        assert_eq!(journal, decoded);
        assert!(replay_journal(&decoded, 1).is_clean());
    }

    #[test]
    fn tampered_outcome_digest_is_detected() {
        let cells: Vec<MatrixCell> = small_cells().into_iter().take(3).collect();
        let (_, mut journal) = record_cells(&cells, 1);
        journal.cells[0].outcome_digest ^= 1;
        let report = replay_journal(&journal, 1);
        assert_eq!(report.diffs.len(), 1);
        assert!(report.diffs[0].mismatches[0].contains("outcome digest"));
    }

    #[test]
    fn config_drift_is_reported_not_replayed() {
        let cells: Vec<MatrixCell> = small_cells().into_iter().take(1).collect();
        let (_, mut journal) = record_cells(&cells, 1);
        journal.cells[0].config_hash ^= 0xdead;
        let report = replay_journal(&journal, 1);
        assert_eq!(report.diffs.len(), 1);
        assert!(report.diffs[0].mismatches[0].contains("config hash drifted"));
    }

    #[test]
    fn unknown_tool_and_subject_are_reported() {
        let cells: Vec<MatrixCell> = small_cells().into_iter().take(1).collect();
        let (_, journal) = record_cells(&cells, 1);
        let mut bad_tool = journal.clone();
        bad_tool.cells[0].tool = "nonesuch".to_string();
        let r = replay_journal(&bad_tool, 1);
        assert!(r.diffs[0].mismatches[0].contains("unknown tool"));
        let mut bad_subject = journal;
        bad_subject.cells[0].subject = "nonesuch".to_string();
        let r = replay_journal(&bad_subject, 1);
        assert!(r.diffs[0].mismatches[0].contains("unknown subject"));
    }

    #[test]
    fn cell_config_hashes_are_distinct_per_tool() {
        let hashes: Vec<u64> = Tool::ALL
            .into_iter()
            .chain([Tool::PFuzzerFleet])
            .map(cell_config_hash)
            .collect();
        for i in 0..hashes.len() {
            for j in 0..i {
                assert_ne!(hashes[i], hashes[j], "tools {i} and {j} share a hash");
            }
        }
    }

    #[test]
    fn fleet_cells_record_and_replay() {
        let info = pdf_subjects::by_name("arith").unwrap();
        let cells = vec![MatrixCell {
            info,
            tool: Tool::PFuzzerFleet,
            execs: 800,
            seed: 3,
            exec_mode: pdf_core::ExecMode::Full,
        }];
        let (_, journal) = record_cells(&cells, 1);
        assert_eq!(journal.cells.len(), 1);
        assert_eq!(journal.cells[0].tool, "pFuzzerFleet");
        let report = replay_journal(&journal, 1);
        assert!(
            report.is_clean(),
            "fleet replay diverged: {:?}",
            report.diffs
        );
    }
}

//! Unified tool runner: one interface over the three fuzzers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pdf_afl::{AflConfig, AflFuzzer};
use pdf_core::{DriverConfig, FuzzReport, Fuzzer};
use pdf_runtime::{BranchSet, Digest, RunStats};
use pdf_subjects::SubjectInfo;
use pdf_symbolic::{KleeConfig, KleeFuzzer};

/// The three tools of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// The paper's contribution.
    PFuzzer,
    /// The "lexical" baseline.
    Afl,
    /// The "semantic" baseline.
    Klee,
}

impl Tool {
    /// All tools in the paper's plotting order.
    pub const ALL: [Tool; 3] = [Tool::Afl, Tool::Klee, Tool::PFuzzer];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::PFuzzer => "pFuzzer",
            Tool::Afl => "AFL",
            Tool::Klee => "KLEE",
        }
    }

    /// The inverse of [`Tool::name`], used when decoding journals.
    pub fn from_name(name: &str) -> Option<Tool> {
        Tool::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// Per-run budget: executions and the seeds to try (best run reported,
/// as in the paper's best-of-three).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalBudget {
    /// Subject executions per seed (for pFuzzer and KLEE).
    pub execs: u64,
    /// Seeds to run; the best outcome is kept.
    pub seeds: Vec<u64>,
    /// Execution multiplier for AFL. The paper compares equal
    /// *wall-clock* budgets, and pFuzzer's taint instrumentation slows
    /// executions "by a factor of about 100" (Section 4) while AFL runs
    /// at native speed — "generating 1,000 times more inputs than
    /// pFuzzer" (Section 5.2). The default of 10 keeps that asymmetry at
    /// laptop scale; set to 1 for an equal-executions comparison.
    pub afl_throughput: u64,
}

impl Default for EvalBudget {
    fn default() -> Self {
        EvalBudget {
            execs: 30_000,
            seeds: vec![1, 2, 3],
            afl_throughput: 10,
        }
    }
}

/// A tool's campaign result in tool-independent form.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which tool ran.
    pub tool: Tool,
    /// Subject name.
    pub subject: &'static str,
    /// Seed the campaign ran with.
    pub seed: u64,
    /// Valid inputs produced (each covered new code when found).
    pub valid_inputs: Vec<Vec<u8>>,
    /// Execution count at which each valid input was found.
    pub valid_found_at: Vec<u64>,
    /// Executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs.
    pub valid_branches: BranchSet,
    /// Branches covered by any run.
    pub all_branches: BranchSet,
    /// The campaign's byte-level decision stream, when the tool records
    /// one: pFuzzer journals every random byte it draws; the baselines
    /// leave this empty and account for their RNG usage through
    /// `stats.decisions`/`stats.decision_digest` instead.
    pub decisions: Vec<u8>,
    /// Observability counters and timings of the campaign. Wall-clock
    /// fields vary between runs; determinism comparisons must ignore
    /// them.
    pub stats: RunStats,
}

/// 64-bit FNV-1a digest over every deterministic field of an outcome —
/// the `out=` value of a journal cell. Wall-clock statistics are
/// excluded, so two runs of the same cell digest identically no matter
/// how the scheduler treated them.
pub fn outcome_digest(o: &Outcome) -> u64 {
    let mut d = Digest::new();
    d.write_str(o.tool.name());
    d.write_str(o.subject);
    d.write_u64(o.seed);
    d.write_u64(o.valid_inputs.len() as u64);
    for input in &o.valid_inputs {
        d.write_bytes(input);
    }
    d.write_u64(o.valid_found_at.len() as u64);
    for &at in &o.valid_found_at {
        d.write_u64(at);
    }
    d.write_u64(o.execs);
    for set in [&o.valid_branches, &o.all_branches] {
        d.write_u64(set.len() as u64);
        for b in set.iter() {
            d.write_u64(b.site.0);
            d.write_u8(b.outcome as u8);
        }
    }
    d.write_bytes(&o.decisions);
    d.write_u64(o.stats.executions);
    d.write_u64(o.stats.events);
    d.write_u64(o.stats.valid_inputs);
    d.write_u64(o.stats.queue_depth as u64);
    d.write_u64(o.stats.decisions);
    d.write_u64(o.stats.decision_digest);
    d.finish()
}

/// Converts a pFuzzer [`FuzzReport`] into the tool-independent
/// [`Outcome`] form. Shared by the fresh-run path and the journal
/// replay path so both digest identically.
pub(crate) fn pfuzzer_outcome(subject: &'static str, seed: u64, r: FuzzReport) -> Outcome {
    Outcome {
        tool: Tool::PFuzzer,
        subject,
        seed,
        valid_inputs: r.valid_inputs,
        valid_found_at: r.valid_found_at,
        execs: r.execs,
        valid_branches: r.valid_branches,
        all_branches: r.all_branches,
        decisions: r.decisions,
        stats: r.stats,
    }
}

/// Runs one tool on one subject with one seed.
pub fn run_tool_seeded(tool: Tool, info: &SubjectInfo, execs: u64, seed: u64) -> Outcome {
    match tool {
        Tool::PFuzzer => {
            let cfg = DriverConfig {
                seed,
                max_execs: execs,
                ..DriverConfig::default()
            };
            let r = Fuzzer::new(info.subject, cfg).run();
            pfuzzer_outcome(info.name, seed, r)
        }
        Tool::Afl => {
            let cfg = AflConfig {
                seed,
                max_execs: execs,
                ..AflConfig::default()
            };
            let r = AflFuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                seed,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
                decisions: Vec::new(),
                stats: r.stats,
            }
        }
        Tool::Klee => {
            // KLEE is deterministic; the seed only permutes nothing, but
            // keeping the interface uniform costs one extra run at most.
            let cfg = KleeConfig {
                max_execs: execs,
                ..KleeConfig::default()
            };
            let r = KleeFuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                seed,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
                decisions: Vec::new(),
                stats: r.stats,
            }
        }
    }
}

/// The seeds a tool runs under a budget. KLEE's concolic exploration is
/// deterministic, so it runs the first seed only.
fn tool_seeds(tool: Tool, budget: &EvalBudget) -> &[u64] {
    if tool == Tool::Klee {
        &budget.seeds[..1.min(budget.seeds.len())]
    } else {
        &budget.seeds
    }
}

/// The execution budget a tool gets: AFL's is multiplied by the
/// throughput factor (it runs uninstrumented in the paper's setup).
fn tool_execs(tool: Tool, budget: &EvalBudget) -> u64 {
    if tool == Tool::Afl {
        budget.execs.saturating_mul(budget.afl_throughput.max(1))
    } else {
        budget.execs
    }
}

/// Runs a tool over every seed in the budget and returns the best
/// outcome (most branches covered by valid inputs, the paper's
/// headline coverage measure; ties broken by more valid inputs).
pub fn run_tool(tool: Tool, info: &SubjectInfo, budget: &EvalBudget) -> Outcome {
    let execs = tool_execs(tool, budget);
    let outcomes: Vec<Outcome> = tool_seeds(tool, budget)
        .iter()
        .map(|&s| run_tool_seeded(tool, info, execs, s))
        .collect();
    best_outcome(outcomes).expect("at least one seed")
}

/// One independent (subject, tool, seed) unit of the evaluation matrix.
#[derive(Debug, Clone, Copy)]
pub struct MatrixCell {
    /// Subject to run.
    pub info: SubjectInfo,
    /// Tool to run.
    pub tool: Tool,
    /// Execution budget for this cell (AFL's throughput multiplier
    /// already applied).
    pub execs: u64,
    /// Campaign seed.
    pub seed: u64,
}

/// Expands a budget into the full deterministic cell list: subjects in
/// Table-1 order, tools in [`Tool::ALL`] order, seeds in budget order.
/// Cells for one (subject, tool) pair are contiguous, which is what
/// [`collapse_matrix`] relies on. Each cell is self-contained — its own
/// seeded RNG, no shared state — so the cells can run in any order (or
/// in parallel via [`run_cells`]) and still reproduce the serial matrix
/// exactly.
pub fn matrix_cells(budget: &EvalBudget) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for info in pdf_subjects::evaluation_subjects() {
        for tool in Tool::ALL {
            let execs = tool_execs(tool, budget);
            for &seed in tool_seeds(tool, budget) {
                cells.push(MatrixCell {
                    info,
                    tool,
                    execs,
                    seed,
                });
            }
        }
    }
    cells
}

/// Runs every cell, fanning the work out over `jobs` threads (clamped
/// to at least 1 and at most the cell count). Workers claim cells from
/// a shared atomic counter and deposit results into per-cell slots, so
/// the returned vector is in input order no matter how the scheduler
/// interleaves — the output is identical for every `jobs` value, modulo
/// the wall-clock fields inside [`Outcome::stats`].
pub fn run_cells(cells: &[MatrixCell], jobs: usize) -> Vec<Outcome> {
    if cells.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, cells.len());
    if jobs == 1 {
        return cells
            .iter()
            .map(|c| run_tool_seeded(c.tool, &c.info, c.execs, c.seed))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Outcome>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let outcome = run_tool_seeded(cell.tool, &cell.info, cell.execs, cell.seed);
                *slots[i].lock().expect("slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("cell ran"))
        .collect()
}

/// Collapses per-cell outcomes (in [`matrix_cells`] order) to one best
/// outcome per (subject, tool) group, preserving [`best_outcome`]'s
/// tie-breaking: within a group the outcomes are in seed order, exactly
/// as the serial [`run_tool`] sees them.
pub fn collapse_matrix(outcomes: Vec<Outcome>) -> Vec<Outcome> {
    let mut collapsed = Vec::new();
    let mut group: Vec<Outcome> = Vec::new();
    for o in outcomes {
        if let Some(first) = group.first() {
            if first.subject != o.subject || first.tool != o.tool {
                let done = std::mem::take(&mut group);
                collapsed.push(best_outcome(done).expect("group is non-empty"));
            }
        }
        group.push(o);
    }
    if !group.is_empty() {
        collapsed.push(best_outcome(group).expect("group is non-empty"));
    }
    collapsed
}

/// Picks the best outcome of several seeded runs.
pub fn best_outcome(outcomes: Vec<Outcome>) -> Option<Outcome> {
    outcomes
        .into_iter()
        .max_by_key(|o| (o.valid_branches.len(), o.valid_inputs.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> EvalBudget {
        EvalBudget {
            execs: 800,
            seeds: vec![1, 2],
            afl_throughput: 2,
        }
    }

    #[test]
    fn all_three_tools_run_on_every_subject() {
        for info in pdf_subjects::evaluation_subjects() {
            for tool in Tool::ALL {
                let o = run_tool_seeded(tool, &info, 200, 1);
                assert_eq!(o.subject, info.name);
                assert!(o.execs <= 200, "{} on {} overspent", tool.name(), info.name);
            }
        }
    }

    #[test]
    fn best_outcome_prefers_more_valid_coverage() {
        let info = pdf_subjects::by_name("ini").unwrap();
        let a = run_tool_seeded(Tool::Afl, &info, 200, 1);
        let b = run_tool_seeded(Tool::Afl, &info, 2_000, 1);
        let best = best_outcome(vec![a, b.clone()]).unwrap();
        assert_eq!(best.valid_branches.len(), b.valid_branches.len());
    }

    #[test]
    fn run_tool_reports_a_seeded_best() {
        let info = pdf_subjects::by_name("csv").unwrap();
        let o = run_tool(Tool::PFuzzer, &info, &budget());
        assert_eq!(o.tool, Tool::PFuzzer);
        assert!(!o.valid_inputs.is_empty());
    }

    #[test]
    fn tool_names() {
        assert_eq!(Tool::PFuzzer.name(), "pFuzzer");
        assert_eq!(Tool::Afl.name(), "AFL");
        assert_eq!(Tool::Klee.name(), "KLEE");
        for tool in Tool::ALL {
            assert_eq!(Tool::from_name(tool.name()), Some(tool));
        }
        assert_eq!(Tool::from_name("afl"), None);
    }

    #[test]
    fn only_pfuzzer_records_an_explicit_decision_stream() {
        let info = pdf_subjects::by_name("csv").unwrap();
        let p = run_tool_seeded(Tool::PFuzzer, &info, 300, 1);
        assert!(!p.decisions.is_empty());
        assert_eq!(p.stats.decisions, p.decisions.len() as u64);
        let a = run_tool_seeded(Tool::Afl, &info, 300, 1);
        assert!(a.decisions.is_empty());
        assert!(a.stats.decisions > 0, "AFL still counts its RNG draws");
        let k = run_tool_seeded(Tool::Klee, &info, 300, 1);
        assert!(k.decisions.is_empty());
        assert_eq!(k.stats.decisions, 0, "BFS KLEE draws nothing");
    }

    #[test]
    fn outcome_digest_is_stable_and_discriminating() {
        let info = pdf_subjects::by_name("ini").unwrap();
        let a = run_tool_seeded(Tool::PFuzzer, &info, 300, 1);
        let b = run_tool_seeded(Tool::PFuzzer, &info, 300, 1);
        assert_eq!(outcome_digest(&a), outcome_digest(&b));
        let c = run_tool_seeded(Tool::PFuzzer, &info, 300, 2);
        assert_ne!(outcome_digest(&a), outcome_digest(&c));
        let d = run_tool_seeded(Tool::Afl, &info, 300, 1);
        assert_ne!(outcome_digest(&a), outcome_digest(&d));
    }

    /// Deterministic fields only — stats carry wall-clock times that
    /// legitimately differ between runs.
    fn assert_outcomes_identical(a: &[Outcome], b: &[Outcome]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.tool, y.tool);
            assert_eq!(x.subject, y.subject);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.valid_inputs, y.valid_inputs);
            assert_eq!(x.valid_found_at, y.valid_found_at);
            assert_eq!(x.execs, y.execs);
            assert_eq!(x.valid_branches, y.valid_branches);
            assert_eq!(x.all_branches, y.all_branches);
            assert_eq!(x.decisions, y.decisions);
            assert_eq!(x.stats.executions, y.stats.executions);
            assert_eq!(x.stats.events, y.stats.events);
            assert_eq!(x.stats.valid_inputs, y.stats.valid_inputs);
            assert_eq!(x.stats.queue_depth, y.stats.queue_depth);
            assert_eq!(x.stats.decisions, y.stats.decisions);
            assert_eq!(x.stats.decision_digest, y.stats.decision_digest);
            assert_eq!(outcome_digest(x), outcome_digest(y));
        }
    }

    #[test]
    fn matrix_cells_cover_the_full_matrix_in_order() {
        let cells = matrix_cells(&budget());
        // 5 subjects × (AFL 2 seeds + KLEE 1 seed + pFuzzer 2 seeds)
        assert_eq!(cells.len(), 5 * (2 + 1 + 2));
        let b = budget();
        for c in &cells {
            if c.tool == Tool::Afl {
                assert_eq!(c.execs, b.execs * b.afl_throughput);
            } else {
                assert_eq!(c.execs, b.execs);
            }
        }
        let klee: Vec<_> = cells.iter().filter(|c| c.tool == Tool::Klee).collect();
        assert_eq!(klee.len(), 5);
        assert!(klee.iter().all(|c| c.seed == b.seeds[0]));
        // cells of one (subject, tool) pair are contiguous
        let mut seen = Vec::new();
        for c in &cells {
            let key = (c.info.name, c.tool);
            if seen.last() != Some(&key) {
                assert!(!seen.contains(&key), "group {key:?} split");
                seen.push(key);
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn parallel_cells_match_serial_cells() {
        let budget = EvalBudget {
            execs: 300,
            seeds: vec![1, 2],
            afl_throughput: 2,
        };
        let cells = matrix_cells(&budget);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        assert_outcomes_identical(&serial, &parallel);
        let collapsed = collapse_matrix(parallel);
        assert_eq!(collapsed.len(), 15);
    }

    #[test]
    fn collapse_matches_run_tool() {
        let budget = EvalBudget {
            execs: 300,
            seeds: vec![1, 2],
            afl_throughput: 2,
        };
        let info = pdf_subjects::by_name("csv").unwrap();
        let cells: Vec<MatrixCell> = matrix_cells(&budget)
            .into_iter()
            .filter(|c| c.info.name == "csv")
            .collect();
        let collapsed = collapse_matrix(run_cells(&cells, 2));
        assert_eq!(collapsed.len(), 3);
        for (got, tool) in collapsed.iter().zip(Tool::ALL) {
            let want = run_tool(tool, &info, &budget);
            assert_outcomes_identical(std::slice::from_ref(got), std::slice::from_ref(&want));
        }
    }

    #[test]
    fn run_cells_handles_empty_and_oversized_jobs() {
        assert!(run_cells(&[], 8).is_empty());
        let budget = EvalBudget {
            execs: 100,
            seeds: vec![1],
            afl_throughput: 1,
        };
        let cells: Vec<MatrixCell> = matrix_cells(&budget)
            .into_iter()
            .filter(|c| c.info.name == "ini" && c.tool == Tool::Afl)
            .collect();
        assert_eq!(cells.len(), 1);
        // more jobs than cells is clamped, not an error
        let out = run_cells(&cells, 64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seed, 1);
    }
}

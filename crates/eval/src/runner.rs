//! Unified tool runner: one interface over the three fuzzers.

use pdf_afl::{AflConfig, AflFuzzer};
use pdf_core::{DriverConfig, Fuzzer};
use pdf_runtime::BranchSet;
use pdf_subjects::SubjectInfo;
use pdf_symbolic::{KleeConfig, KleeFuzzer};

/// The three tools of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// The paper's contribution.
    PFuzzer,
    /// The "lexical" baseline.
    Afl,
    /// The "semantic" baseline.
    Klee,
}

impl Tool {
    /// All tools in the paper's plotting order.
    pub const ALL: [Tool; 3] = [Tool::Afl, Tool::Klee, Tool::PFuzzer];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::PFuzzer => "pFuzzer",
            Tool::Afl => "AFL",
            Tool::Klee => "KLEE",
        }
    }
}

/// Per-run budget: executions and the seeds to try (best run reported,
/// as in the paper's best-of-three).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalBudget {
    /// Subject executions per seed (for pFuzzer and KLEE).
    pub execs: u64,
    /// Seeds to run; the best outcome is kept.
    pub seeds: Vec<u64>,
    /// Execution multiplier for AFL. The paper compares equal
    /// *wall-clock* budgets, and pFuzzer's taint instrumentation slows
    /// executions "by a factor of about 100" (Section 4) while AFL runs
    /// at native speed — "generating 1,000 times more inputs than
    /// pFuzzer" (Section 5.2). The default of 10 keeps that asymmetry at
    /// laptop scale; set to 1 for an equal-executions comparison.
    pub afl_throughput: u64,
}

impl Default for EvalBudget {
    fn default() -> Self {
        EvalBudget {
            execs: 30_000,
            seeds: vec![1, 2, 3],
            afl_throughput: 10,
        }
    }
}

/// A tool's campaign result in tool-independent form.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which tool ran.
    pub tool: Tool,
    /// Subject name.
    pub subject: &'static str,
    /// Valid inputs produced (each covered new code when found).
    pub valid_inputs: Vec<Vec<u8>>,
    /// Execution count at which each valid input was found.
    pub valid_found_at: Vec<u64>,
    /// Executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs.
    pub valid_branches: BranchSet,
    /// Branches covered by any run.
    pub all_branches: BranchSet,
}

/// Runs one tool on one subject with one seed.
pub fn run_tool_seeded(tool: Tool, info: &SubjectInfo, execs: u64, seed: u64) -> Outcome {
    match tool {
        Tool::PFuzzer => {
            let cfg = DriverConfig {
                seed,
                max_execs: execs,
                ..DriverConfig::default()
            };
            let r = Fuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
            }
        }
        Tool::Afl => {
            let cfg = AflConfig {
                seed,
                max_execs: execs,
                ..AflConfig::default()
            };
            let r = AflFuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
            }
        }
        Tool::Klee => {
            // KLEE is deterministic; the seed only permutes nothing, but
            // keeping the interface uniform costs one extra run at most.
            let cfg = KleeConfig {
                max_execs: execs,
                ..KleeConfig::default()
            };
            let r = KleeFuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
            }
        }
    }
}

/// Runs a tool over every seed in the budget and returns the best
/// outcome (most branches covered by valid inputs, the paper's
/// headline coverage measure; ties broken by more valid inputs).
pub fn run_tool(tool: Tool, info: &SubjectInfo, budget: &EvalBudget) -> Outcome {
    let seeds: &[u64] = if tool == Tool::Klee {
        &budget.seeds[..1.min(budget.seeds.len())]
    } else {
        &budget.seeds
    };
    let execs = if tool == Tool::Afl {
        budget.execs.saturating_mul(budget.afl_throughput.max(1))
    } else {
        budget.execs
    };
    let outcomes: Vec<Outcome> = seeds
        .iter()
        .map(|&s| run_tool_seeded(tool, info, execs, s))
        .collect();
    best_outcome(outcomes).expect("at least one seed")
}

/// Picks the best outcome of several seeded runs.
pub fn best_outcome(outcomes: Vec<Outcome>) -> Option<Outcome> {
    outcomes.into_iter().max_by_key(|o| {
        (o.valid_branches.len(), o.valid_inputs.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> EvalBudget {
        EvalBudget {
            execs: 800,
            seeds: vec![1, 2],
            afl_throughput: 2,
        }
    }

    #[test]
    fn all_three_tools_run_on_every_subject() {
        for info in pdf_subjects::evaluation_subjects() {
            for tool in Tool::ALL {
                let o = run_tool_seeded(tool, &info, 200, 1);
                assert_eq!(o.subject, info.name);
                assert!(o.execs <= 200, "{} on {} overspent", tool.name(), info.name);
            }
        }
    }

    #[test]
    fn best_outcome_prefers_more_valid_coverage() {
        let info = pdf_subjects::by_name("ini").unwrap();
        let a = run_tool_seeded(Tool::Afl, &info, 200, 1);
        let b = run_tool_seeded(Tool::Afl, &info, 2_000, 1);
        let best = best_outcome(vec![a, b.clone()]).unwrap();
        assert_eq!(best.valid_branches.len(), b.valid_branches.len());
    }

    #[test]
    fn run_tool_reports_a_seeded_best() {
        let info = pdf_subjects::by_name("csv").unwrap();
        let o = run_tool(Tool::PFuzzer, &info, &budget());
        assert_eq!(o.tool, Tool::PFuzzer);
        assert!(!o.valid_inputs.is_empty());
    }

    #[test]
    fn tool_names() {
        assert_eq!(Tool::PFuzzer.name(), "pFuzzer");
        assert_eq!(Tool::Afl.name(), "AFL");
        assert_eq!(Tool::Klee.name(), "KLEE");
    }
}

//! Unified tool runner: one interface over the three fuzzers, plus the
//! fault-tolerant cell supervisor.
//!
//! [`run_cells`] is a *supervisor*, not a plain fan-out: each cell runs
//! under panic isolation, a crashed or fuel-hung cell is retried with a
//! deterministically perturbed seed, and a cell that stays broken is
//! recorded as a [`CellOutcome::Poisoned`] row instead of aborting the
//! whole matrix. One chaos-wrapped subject cannot take down a 48-hour
//! evaluation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pdf_afl::{AflConfig, AflFuzzer};
use pdf_core::{DriverConfig, ExecMode, FuzzReport, Fuzzer};
use pdf_runtime::{catch_silent, BranchSet, Digest, RunStats};
use pdf_subjects::SubjectInfo;
use pdf_symbolic::{KleeConfig, KleeFuzzer};

/// The three tools of the evaluation, plus the sharded-fleet variant
/// of pFuzzer for 1-shard vs N-shard comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// The paper's contribution.
    PFuzzer,
    /// The paper's contribution run as a sharded cooperative fleet
    /// ([`pdf_fleet::Fleet`], [`FLEET_SHARDS`] workers splitting the
    /// execution budget and sharing discoveries every sync epoch). Not
    /// part of [`Tool::ALL`]: the paper's matrix compares the three
    /// single-campaign tools, and the fleet rides alongside for the
    /// sharding experiment (`fleetrunner`, EXPERIMENTS.md).
    PFuzzerFleet,
    /// The "lexical" baseline.
    Afl,
    /// The "semantic" baseline.
    Klee,
    /// The combined three-stage pipeline: pFuzzer explores, the grammar
    /// miner generalizes, and the compiled [`pdf_gen`] generator floods
    /// coverage alongside a cooperative fleet
    /// ([`pdf_gen::run_combined`]). Not part of [`Tool::ALL`] for the
    /// same reason as [`Tool::PFuzzerFleet`]: the paper's matrix stays
    /// three tools wide, and the pipeline rides alongside for the
    /// grammar-generation study (`evalrunner --grammar-in`,
    /// EXPERIMENTS.md).
    GrammarGen,
}

impl Tool {
    /// The paper's three tools, in plotting order.
    pub const ALL: [Tool; 3] = [Tool::Afl, Tool::Klee, Tool::PFuzzer];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::PFuzzer => "pFuzzer",
            Tool::PFuzzerFleet => "pFuzzerFleet",
            Tool::Afl => "AFL",
            Tool::Klee => "KLEE",
            Tool::GrammarGen => "GrammarGen",
        }
    }

    /// The inverse of [`Tool::name`], used when decoding journals.
    /// Covers the off-matrix variants too, so recorded cells replay.
    pub fn from_name(name: &str) -> Option<Tool> {
        Tool::ALL
            .into_iter()
            .chain([Tool::PFuzzerFleet, Tool::GrammarGen])
            .find(|t| t.name() == name)
    }
}

/// Shard count [`Tool::PFuzzerFleet`] runs with. Fixed (rather than an
/// [`EvalBudget`] knob) so a journaled fleet cell pins down its whole
/// configuration from `(tool, execs, seed)` alone.
pub const FLEET_SHARDS: usize = 4;

/// The fleet configuration [`Tool::PFuzzerFleet`] derives from a cell's
/// total execution budget and seed: [`FLEET_SHARDS`] workers splitting
/// `execs` evenly, syncing eight times per shard-budget (at least every
/// 50 execs, so tiny budgets still cooperate). Shared by the fresh-run
/// and replay paths so both digest identically; `fleetrunner` uses it
/// as the default shape too.
pub fn fleet_config_for(execs: u64, seed: u64) -> pdf_fleet::FleetConfig {
    let per_shard = (execs / FLEET_SHARDS as u64).max(1);
    let sync_every = (per_shard / 8).clamp(50, per_shard.max(50));
    let base = DriverConfig {
        seed,
        max_execs: per_shard,
        ..DriverConfig::default()
    };
    // Serial inside the cell: the eval matrix already fans out across
    // cells, and serial vs parallel fleets are digest-identical anyway.
    let mut cfg = pdf_fleet::FleetConfig::new(FLEET_SHARDS, sync_every, base);
    cfg.parallel = false;
    cfg
}

/// The combined-campaign configuration [`Tool::GrammarGen`] derives
/// from a cell's total execution budget and seed: half the budget goes
/// to the pFuzzer exploration stage (the miner needs its comparison
/// log), the rest is split across two fleet shards, and eight
/// generator re-weighting epochs of 64 inputs each interleave with the
/// fleet's sync epochs. Like [`fleet_config_for`], the whole shape pins
/// down from `(execs, seed)` alone, so a journaled cell replays.
pub fn combined_config_for(execs: u64, seed: u64) -> pdf_gen::CombinedConfig {
    let explore = (execs / 2).max(1);
    let shards = 2usize;
    let per_shard = (execs.saturating_sub(explore) / shards as u64).max(1);
    let sync_every = (per_shard / 8).clamp(50, per_shard.max(50));
    pdf_gen::CombinedConfig {
        seed,
        explore_execs: explore,
        shards,
        fleet_execs_per_shard: per_shard,
        sync_every,
        gen_epochs: 8,
        gen_batch: 64,
        max_depth: 10,
        exec_mode: ExecMode::Full,
    }
}

/// Per-run budget: executions and the seeds to try (best run reported,
/// as in the paper's best-of-three).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalBudget {
    /// Subject executions per seed (for pFuzzer and KLEE).
    pub execs: u64,
    /// Seeds to run; the best outcome is kept.
    pub seeds: Vec<u64>,
    /// Execution multiplier for AFL. The paper compares equal
    /// *wall-clock* budgets, and pFuzzer's taint instrumentation slows
    /// executions "by a factor of about 100" (Section 4) while AFL runs
    /// at native speed — "generating 1,000 times more inputs than
    /// pFuzzer" (Section 5.2). The default of 10 keeps that asymmetry at
    /// laptop scale; set to 1 for an equal-executions comparison.
    pub afl_throughput: u64,
}

impl Default for EvalBudget {
    fn default() -> Self {
        EvalBudget {
            execs: 30_000,
            seeds: vec![1, 2, 3],
            afl_throughput: 10,
        }
    }
}

/// A tool's campaign result in tool-independent form.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which tool ran.
    pub tool: Tool,
    /// Subject name.
    pub subject: &'static str,
    /// Seed the campaign ran with.
    pub seed: u64,
    /// Valid inputs produced (each covered new code when found).
    pub valid_inputs: Vec<Vec<u8>>,
    /// Execution count at which each valid input was found.
    pub valid_found_at: Vec<u64>,
    /// Executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs.
    pub valid_branches: BranchSet,
    /// Branches covered by any run.
    pub all_branches: BranchSet,
    /// The campaign's byte-level decision stream, when the tool records
    /// one: pFuzzer journals every random byte it draws; the baselines
    /// leave this empty and account for their RNG usage through
    /// `stats.decisions`/`stats.decision_digest` instead.
    pub decisions: Vec<u8>,
    /// Observability counters and timings of the campaign. Wall-clock
    /// fields vary between runs; determinism comparisons must ignore
    /// them.
    pub stats: RunStats,
}

/// 64-bit FNV-1a digest over every deterministic field of an outcome —
/// the `out=` value of a journal cell. Wall-clock statistics are
/// excluded, so two runs of the same cell digest identically no matter
/// how the scheduler treated them.
pub fn outcome_digest(o: &Outcome) -> u64 {
    let mut d = Digest::new();
    d.write_str(o.tool.name());
    d.write_str(o.subject);
    d.write_u64(o.seed);
    d.write_u64(o.valid_inputs.len() as u64);
    for input in &o.valid_inputs {
        d.write_bytes(input);
    }
    d.write_u64(o.valid_found_at.len() as u64);
    for &at in &o.valid_found_at {
        d.write_u64(at);
    }
    d.write_u64(o.execs);
    for set in [&o.valid_branches, &o.all_branches] {
        d.write_u64(set.len() as u64);
        for b in set.iter() {
            d.write_u64(b.site.0);
            d.write_u8(b.outcome as u8);
        }
    }
    d.write_bytes(&o.decisions);
    d.write_u64(o.stats.executions);
    d.write_u64(o.stats.events);
    d.write_u64(o.stats.valid_inputs);
    // deterministic per campaign, like the driver's report digest;
    // `retries` is supervisor metadata and stays out — a replayed cell
    // legitimately retries zero times
    d.write_u64(o.stats.hangs);
    d.write_u64(o.stats.crashes);
    d.write_u64(o.stats.queue_depth as u64);
    d.write_u64(o.stats.decisions);
    d.write_u64(o.stats.decision_digest);
    d.finish()
}

/// Converts a pFuzzer [`FuzzReport`] into the tool-independent
/// [`Outcome`] form. Shared by the fresh-run path and the journal
/// replay path so both digest identically.
pub(crate) fn pfuzzer_outcome(subject: &'static str, seed: u64, r: FuzzReport) -> Outcome {
    Outcome {
        tool: Tool::PFuzzer,
        subject,
        seed,
        valid_inputs: r.valid_inputs,
        valid_found_at: r.valid_found_at,
        execs: r.execs,
        valid_branches: r.valid_branches,
        all_branches: r.all_branches,
        decisions: r.decisions,
        stats: r.stats,
    }
}

/// Converts a [`pdf_fleet::FleetReport`] into the tool-independent
/// [`Outcome`] form. The fleet's deduplicated valid inputs carry
/// fleet-total discovery costs (see
/// [`FleetReport::valid_found_at`](pdf_fleet::FleetReport::valid_found_at)),
/// deterministic counters sum across shards, and the decision digest is
/// a length-framed digest over the per-shard journals — `decisions`
/// itself stays empty like the baselines (one byte stream cannot
/// represent N journals).
pub(crate) fn fleet_outcome(
    subject: &'static str,
    seed: u64,
    r: pdf_fleet::FleetReport,
) -> Outcome {
    let mut stats = RunStats::default();
    let mut stream_digest = Digest::new();
    for shard in &r.shards {
        stats.events += shard.stats.events;
        stats.hangs += shard.stats.hangs;
        stats.crashes += shard.stats.crashes;
        stats.queue_depth += shard.stats.queue_depth;
        stats.decisions += shard.stats.decisions;
        stats.wall_secs += shard.stats.wall_secs;
        stream_digest.write_u64(shard.decisions.len() as u64);
        stream_digest.write_bytes(&shard.decisions);
    }
    stats.executions = r.total_execs;
    stats.valid_inputs = r.valid_inputs.len() as u64;
    stats.decision_digest = stream_digest.finish();
    Outcome {
        tool: Tool::PFuzzerFleet,
        subject,
        seed,
        valid_inputs: r.valid_inputs,
        valid_found_at: r.valid_found_at,
        execs: r.total_execs,
        valid_branches: r.valid_branches,
        all_branches: r.all_branches,
        decisions: Vec::new(),
        stats,
    }
}

/// Converts a [`pdf_gen::CombinedReport`] into the tool-independent
/// [`Outcome`] form: the fleet stage's outcome, widened with the
/// exploration budget, the generator's fast-tier executions
/// (`stats.executions` counts them; `execs` stays the instrumented
/// explore + fleet budget the cell was promised), and the
/// generator-found valid inputs the fleet never re-discovered (charged
/// the full budget as their discovery cost — the flood has no per-input
/// exec accounting). The decision digest folds every stage's digest so
/// [`outcome_digest`] witnesses the whole campaign.
pub(crate) fn combined_outcome(
    subject: &'static str,
    seed: u64,
    r: pdf_gen::CombinedReport,
) -> Outcome {
    let gen_execs = r.flood.as_ref().map_or(0, |f| f.generated);
    let mut o = fleet_outcome(subject, seed, r.fleet);
    o.tool = Tool::GrammarGen;
    o.execs += r.explore_execs;
    o.stats.executions = o.execs + gen_execs;
    let mut d = Digest::new();
    d.write_u64(o.stats.decision_digest);
    d.write_u64(r.explore_digest);
    d.write_u64(r.grammar_digest);
    if let Some(flood) = &r.flood {
        d.write_u64(flood.digest());
        for input in &flood.distinct_valid {
            if !o.valid_inputs.contains(input) {
                o.valid_inputs.push(input.clone());
                o.valid_found_at.push(o.execs);
            }
        }
        o.valid_branches.union_with(&flood.branches);
        o.all_branches.union_with(&flood.branches);
    }
    o.stats.decision_digest = d.finish();
    o.stats.valid_inputs = o.valid_inputs.len() as u64;
    o
}

/// Runs one tool on one subject with one seed, in full-instrumentation
/// execution mode. Equivalent to [`run_tool_seeded_in`] with
/// [`ExecMode::Full`]; kept as the short form because the journaled
/// record/replay path is defined over full-fidelity campaigns only.
pub fn run_tool_seeded(tool: Tool, info: &SubjectInfo, execs: u64, seed: u64) -> Outcome {
    run_tool_seeded_in(tool, info, execs, seed, ExecMode::Full)
}

/// Runs one tool on one subject with one seed under an explicit
/// [`ExecMode`]. The mode only shapes the two pFuzzer variants (they
/// own the fast-failure tier); AFL and KLEE have no instrumentation
/// tiers and ignore it.
pub fn run_tool_seeded_in(
    tool: Tool,
    info: &SubjectInfo,
    execs: u64,
    seed: u64,
    exec_mode: ExecMode,
) -> Outcome {
    match tool {
        Tool::PFuzzer => {
            let cfg = DriverConfig {
                seed,
                max_execs: execs,
                exec_mode,
                ..DriverConfig::default()
            };
            let r = Fuzzer::new(info.subject, cfg).run();
            pfuzzer_outcome(info.name, seed, r)
        }
        Tool::PFuzzerFleet => {
            let mut cfg = fleet_config_for(execs, seed);
            cfg.base.exec_mode = exec_mode;
            let r = pdf_fleet::Fleet::new(info.subject, cfg)
                .expect("fleet_config_for produces a valid config")
                .run();
            fleet_outcome(info.name, seed, r)
        }
        Tool::GrammarGen => {
            let mut cfg = combined_config_for(execs, seed);
            cfg.exec_mode = exec_mode;
            let r = pdf_gen::run_combined(info.subject, &cfg)
                .expect("combined_config_for produces a valid fleet shape");
            combined_outcome(info.name, seed, r)
        }
        Tool::Afl => {
            let cfg = AflConfig {
                seed,
                max_execs: execs,
                ..AflConfig::default()
            };
            let r = AflFuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                seed,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
                decisions: Vec::new(),
                stats: r.stats,
            }
        }
        Tool::Klee => {
            // KLEE is deterministic; the seed only permutes nothing, but
            // keeping the interface uniform costs one extra run at most.
            let cfg = KleeConfig {
                max_execs: execs,
                ..KleeConfig::default()
            };
            let r = KleeFuzzer::new(info.subject, cfg).run();
            Outcome {
                tool,
                subject: info.name,
                seed,
                valid_inputs: r.valid_inputs,
                valid_found_at: r.valid_found_at,
                execs: r.execs,
                valid_branches: r.valid_branches,
                all_branches: r.all_branches,
                decisions: Vec::new(),
                stats: r.stats,
            }
        }
    }
}

/// The seeds a tool runs under a budget. KLEE's concolic exploration is
/// deterministic, so it runs the first seed only.
fn tool_seeds(tool: Tool, budget: &EvalBudget) -> &[u64] {
    if tool == Tool::Klee {
        &budget.seeds[..1.min(budget.seeds.len())]
    } else {
        &budget.seeds
    }
}

/// The execution budget a tool gets: AFL's is multiplied by the
/// throughput factor (it runs uninstrumented in the paper's setup).
fn tool_execs(tool: Tool, budget: &EvalBudget) -> u64 {
    if tool == Tool::Afl {
        budget.execs.saturating_mul(budget.afl_throughput.max(1))
    } else {
        budget.execs
    }
}

/// Runs a tool over every seed in the budget and returns the best
/// outcome (most branches covered by valid inputs, the paper's
/// headline coverage measure; ties broken by more valid inputs).
pub fn run_tool(tool: Tool, info: &SubjectInfo, budget: &EvalBudget) -> Outcome {
    let execs = tool_execs(tool, budget);
    let outcomes: Vec<Outcome> = tool_seeds(tool, budget)
        .iter()
        .map(|&s| run_tool_seeded(tool, info, execs, s))
        .collect();
    best_outcome(outcomes).expect("at least one seed")
}

/// One independent (subject, tool, seed) unit of the evaluation matrix.
#[derive(Debug, Clone, Copy)]
pub struct MatrixCell {
    /// Subject to run.
    pub info: SubjectInfo,
    /// Tool to run.
    pub tool: Tool,
    /// Execution budget for this cell (AFL's throughput multiplier
    /// already applied).
    pub execs: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Instrumentation tiering for the pFuzzer variants (AFL and KLEE
    /// ignore it). Journaled record/replay cells always run
    /// [`ExecMode::Full`], the mode whose digests define the
    /// byte-identical replay contract.
    pub exec_mode: ExecMode,
}

/// Expands a budget into the full deterministic cell list: subjects in
/// Table-1 order, tools in [`Tool::ALL`] order, seeds in budget order.
/// Cells for one (subject, tool) pair are contiguous, which is what
/// [`collapse_matrix`] relies on. Each cell is self-contained — its own
/// seeded RNG, no shared state — so the cells can run in any order (or
/// in parallel via [`run_cells`]) and still reproduce the serial matrix
/// exactly.
pub fn matrix_cells(budget: &EvalBudget) -> Vec<MatrixCell> {
    matrix_cells_for(&pdf_subjects::evaluation_subjects(), budget)
}

/// [`matrix_cells`] over an explicit subject list — the chaos-
/// supervision matrix passes
/// [`chaos_evaluation_subjects`](pdf_subjects::chaos::chaos_evaluation_subjects)
/// here; everything downstream is subject-agnostic.
pub fn matrix_cells_for(subjects: &[SubjectInfo], budget: &EvalBudget) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for info in subjects {
        for tool in Tool::ALL {
            let execs = tool_execs(tool, budget);
            for &seed in tool_seeds(tool, budget) {
                cells.push(MatrixCell {
                    info: *info,
                    tool,
                    execs,
                    seed,
                    exec_mode: ExecMode::Full,
                });
            }
        }
    }
    cells
}

/// Retry policy of the cell supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// How many times a crashed or fuel-hung cell is re-attempted with a
    /// perturbed seed before it is recorded as poisoned. Zero disables
    /// retries (a faulty first attempt poisons the cell immediately).
    pub max_retries: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig { max_retries: 2 }
    }
}

/// A cell the supervisor gave up on: every attempt crashed the harness
/// or hung (all executions exhausted their fuel).
#[derive(Debug, Clone)]
pub struct PoisonedCell {
    /// Tool of the abandoned cell.
    pub tool: Tool,
    /// Subject name of the abandoned cell.
    pub subject: &'static str,
    /// The cell's *original* seed (attempts perturb it deterministically).
    pub seed: u64,
    /// Attempts made (1 + retries).
    pub attempts: u64,
    /// Why the final attempt was rejected.
    pub reason: String,
}

/// What the supervisor produced for one matrix cell.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell completed (possibly after retries —
    /// `outcome.stats.retries` says how many).
    Completed(Outcome),
    /// Every attempt failed; the matrix row survives as a marker.
    Poisoned(PoisonedCell),
}

impl CellOutcome {
    /// The completed outcome, if any.
    pub fn outcome(&self) -> Option<&Outcome> {
        match self {
            CellOutcome::Completed(o) => Some(o),
            CellOutcome::Poisoned(_) => None,
        }
    }

    /// Consumes into the completed outcome, if any.
    pub fn into_outcome(self) -> Option<Outcome> {
        match self {
            CellOutcome::Completed(o) => Some(o),
            CellOutcome::Poisoned(_) => None,
        }
    }

    /// Whether the supervisor abandoned this cell.
    pub fn is_poisoned(&self) -> bool {
        matches!(self, CellOutcome::Poisoned(_))
    }
}

/// Drops the poisoned rows, keeping completed outcomes in cell order —
/// the bridge from the supervised matrix to the figure pipeline.
pub fn completed_outcomes(outcomes: Vec<CellOutcome>) -> Vec<Outcome> {
    outcomes
        .into_iter()
        .filter_map(CellOutcome::into_outcome)
        .collect()
}

/// The seed attempt `k` of a cell runs with. Attempt 0 is the cell's
/// own seed; retries mix in a golden-ratio step so each attempt is a
/// fresh but *deterministic* campaign — a retried matrix is still
/// reproducible run-to-run.
pub fn attempt_seed(seed: u64, attempt: u64) -> u64 {
    seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A campaign that executed but made no observable progress because
/// every single execution exhausted its fuel. Treated like a crash by
/// the supervisor: retried, then poisoned.
fn cell_hung(o: &Outcome) -> bool {
    o.stats.executions > 0 && o.stats.hangs == o.stats.executions
}

/// Runs one cell under the supervisor: panic-isolated, retried with
/// perturbed seeds, poisoned after `1 + max_retries` failed attempts.
/// A completed outcome carries its attempt count in `stats.retries`.
pub fn run_cell_supervised(cell: &MatrixCell, sup: &SupervisorConfig) -> CellOutcome {
    let _span = pdf_obs::span("eval.cell");
    let mut reason = String::new();
    for attempt in 0..=sup.max_retries {
        if attempt > 0 {
            pdf_obs::record(|m| m.cell_retries.inc());
        }
        let seed = attempt_seed(cell.seed, attempt);
        match catch_silent(|| {
            run_tool_seeded_in(cell.tool, &cell.info, cell.execs, seed, cell.exec_mode)
        }) {
            Ok(mut outcome) if !cell_hung(&outcome) => {
                outcome.stats.retries = attempt;
                pdf_obs::record(|m| m.cells_completed.inc());
                return CellOutcome::Completed(outcome);
            }
            Ok(outcome) => {
                reason = format!(
                    "hung: all {} executions exhausted their fuel (attempt seed {seed})",
                    outcome.stats.executions
                );
            }
            Err(panic_msg) => {
                reason = format!("harness panic: {panic_msg} (attempt seed {seed})");
            }
        }
    }
    pdf_obs::record(|m| m.cells_poisoned.inc());
    CellOutcome::Poisoned(PoisonedCell {
        tool: cell.tool,
        subject: cell.info.name,
        seed: cell.seed,
        attempts: sup.max_retries + 1,
        reason,
    })
}

/// Runs every cell under the default [`SupervisorConfig`], fanning the
/// work out over `jobs` threads (clamped to at least 1 and at most the
/// cell count). Workers claim cells from a shared atomic counter and
/// deposit results into per-cell slots, so the returned vector is in
/// input order no matter how the scheduler interleaves — the output is
/// identical for every `jobs` value, modulo the wall-clock fields
/// inside [`Outcome::stats`]. Cells never abort the matrix: a
/// persistently crashing or hanging cell becomes a
/// [`CellOutcome::Poisoned`] row.
pub fn run_cells(cells: &[MatrixCell], jobs: usize) -> Vec<CellOutcome> {
    run_cells_supervised(cells, jobs, &SupervisorConfig::default())
}

/// [`run_cells`] with an explicit retry policy.
pub fn run_cells_supervised(
    cells: &[MatrixCell],
    jobs: usize,
    sup: &SupervisorConfig,
) -> Vec<CellOutcome> {
    if cells.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, cells.len());
    if jobs == 1 {
        return cells.iter().map(|c| run_cell_supervised(c, sup)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOutcome>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    // The metrics registry install is per-thread; hand the caller's
    // registry (if any) to every worker so the whole matrix aggregates
    // into one place.
    let registry = pdf_obs::current();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let registry = registry.clone();
            let (next, slots) = (&next, &slots);
            scope.spawn(move || {
                let _metrics = registry.map(pdf_obs::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let outcome = run_cell_supervised(cell, sup);
                    *slots[i].lock().expect("slot poisoned") = Some(outcome);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("cell ran"))
        .collect()
}

/// One-paragraph supervision summary for the matrix footer: totals of
/// hangs, crashes and retries across completed cells, plus one line per
/// poisoned cell.
pub fn supervision_summary(outcomes: &[CellOutcome]) -> String {
    use std::fmt::Write as _;
    let mut hangs = 0u64;
    let mut crashes = 0u64;
    let mut retries = 0u64;
    let mut poisoned = Vec::new();
    for co in outcomes {
        match co {
            CellOutcome::Completed(o) => {
                hangs += o.stats.hangs;
                crashes += o.stats.crashes;
                retries += o.stats.retries;
            }
            CellOutcome::Poisoned(p) => poisoned.push(p),
        }
    }
    let mut s = format!(
        "supervision: {} cells, {} poisoned; {} hung execs, {} crashed execs, {} cell retries",
        outcomes.len(),
        poisoned.len(),
        hangs,
        crashes,
        retries,
    );
    for p in poisoned {
        let _ = write!(
            s,
            "\n  POISONED {}/{} seed {}: {} attempts, {}",
            p.tool.name(),
            p.subject,
            p.seed,
            p.attempts,
            p.reason
        );
    }
    s
}

/// Collapses per-cell outcomes (in [`matrix_cells`] order) to one best
/// outcome per (subject, tool) group, preserving [`best_outcome`]'s
/// tie-breaking: within a group the outcomes are in seed order, exactly
/// as the serial [`run_tool`] sees them.
pub fn collapse_matrix(outcomes: Vec<Outcome>) -> Vec<Outcome> {
    let mut collapsed = Vec::new();
    let mut group: Vec<Outcome> = Vec::new();
    for o in outcomes {
        if let Some(first) = group.first() {
            if first.subject != o.subject || first.tool != o.tool {
                let done = std::mem::take(&mut group);
                collapsed.push(best_outcome(done).expect("group is non-empty"));
            }
        }
        group.push(o);
    }
    if !group.is_empty() {
        collapsed.push(best_outcome(group).expect("group is non-empty"));
    }
    collapsed
}

/// Picks the best outcome of several seeded runs.
pub fn best_outcome(outcomes: Vec<Outcome>) -> Option<Outcome> {
    outcomes
        .into_iter()
        .max_by_key(|o| (o.valid_branches.len(), o.valid_inputs.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> EvalBudget {
        EvalBudget {
            execs: 800,
            seeds: vec![1, 2],
            afl_throughput: 2,
        }
    }

    #[test]
    fn all_three_tools_run_on_every_subject() {
        for info in pdf_subjects::evaluation_subjects() {
            for tool in Tool::ALL {
                let o = run_tool_seeded(tool, &info, 200, 1);
                assert_eq!(o.subject, info.name);
                assert!(o.execs <= 200, "{} on {} overspent", tool.name(), info.name);
            }
        }
    }

    #[test]
    fn best_outcome_prefers_more_valid_coverage() {
        let info = pdf_subjects::by_name("ini").unwrap();
        let a = run_tool_seeded(Tool::Afl, &info, 200, 1);
        let b = run_tool_seeded(Tool::Afl, &info, 2_000, 1);
        let best = best_outcome(vec![a, b.clone()]).unwrap();
        assert_eq!(best.valid_branches.len(), b.valid_branches.len());
    }

    #[test]
    fn run_tool_reports_a_seeded_best() {
        let info = pdf_subjects::by_name("csv").unwrap();
        let o = run_tool(Tool::PFuzzer, &info, &budget());
        assert_eq!(o.tool, Tool::PFuzzer);
        assert!(!o.valid_inputs.is_empty());
    }

    #[test]
    fn fleet_tool_is_deterministic_and_spends_the_split_budget() {
        let info = pdf_subjects::by_name("arith").unwrap();
        let a = run_tool_seeded(Tool::PFuzzerFleet, &info, 1_000, 1);
        let b = run_tool_seeded(Tool::PFuzzerFleet, &info, 1_000, 1);
        assert_eq!(outcome_digest(&a), outcome_digest(&b));
        assert!(a.execs <= 1_000, "fleet overspent the total budget");
        assert!(a.decisions.is_empty(), "fleet journals live per shard");
        let c = run_tool_seeded(Tool::PFuzzerFleet, &info, 1_000, 2);
        assert_ne!(outcome_digest(&a), outcome_digest(&c));
    }

    #[test]
    fn grammar_gen_tool_is_deterministic_and_budget_bounded() {
        let info = pdf_subjects::by_name("arith").unwrap();
        let a = run_tool_seeded(Tool::GrammarGen, &info, 3_000, 1);
        let b = run_tool_seeded(Tool::GrammarGen, &info, 3_000, 1);
        assert_eq!(outcome_digest(&a), outcome_digest(&b));
        assert_eq!(a.tool, Tool::GrammarGen);
        assert!(!a.valid_inputs.is_empty(), "combined run found nothing");
        assert_eq!(a.valid_inputs.len(), a.valid_found_at.len());
        assert!(a.execs <= 3_000, "instrumented budget overspent");
        // the generator's fast-tier floods count as executions
        assert!(a.stats.executions >= a.execs);
        let c = run_tool_seeded(Tool::GrammarGen, &info, 3_000, 2);
        assert_ne!(outcome_digest(&a), outcome_digest(&c));
    }

    #[test]
    fn combined_config_derivation_is_valid_for_tiny_budgets() {
        for execs in [1, 3, 50, 999, 30_000] {
            let cfg = combined_config_for(execs, 7);
            assert!(cfg.explore_execs >= 1);
            assert!(cfg.fleet_execs_per_shard >= 1);
            assert!(cfg.sync_every >= 1);
            assert_eq!(cfg.shards, 2);
            if execs >= 4 {
                let total = cfg.explore_execs + cfg.shards as u64 * cfg.fleet_execs_per_shard;
                assert!(total <= execs, "execs={execs} overspends: {total}");
            }
        }
    }

    #[test]
    fn fleet_config_derivation_is_valid_for_tiny_budgets() {
        for execs in [1, 3, 50, 999, 30_000] {
            let cfg = fleet_config_for(execs, 7);
            assert_eq!(cfg.shards, FLEET_SHARDS);
            assert!(cfg.sync_every >= 1);
            assert!(cfg.base.max_execs >= 1);
            assert!(
                cfg.validate().is_ok(),
                "execs={execs} derived invalid config"
            );
        }
    }

    #[test]
    fn tool_names() {
        assert_eq!(Tool::PFuzzer.name(), "pFuzzer");
        assert_eq!(Tool::PFuzzerFleet.name(), "pFuzzerFleet");
        assert_eq!(Tool::Afl.name(), "AFL");
        assert_eq!(Tool::Klee.name(), "KLEE");
        assert_eq!(Tool::GrammarGen.name(), "GrammarGen");
        assert_eq!(
            Tool::from_name("pFuzzerFleet"),
            Some(Tool::PFuzzerFleet),
            "fleet cells must decode from journals"
        );
        assert_eq!(
            Tool::from_name("GrammarGen"),
            Some(Tool::GrammarGen),
            "combined-pipeline cells must decode from journals"
        );
        assert!(
            !Tool::ALL.contains(&Tool::PFuzzerFleet),
            "the paper's matrix stays three tools wide"
        );
        assert!(
            !Tool::ALL.contains(&Tool::GrammarGen),
            "the paper's matrix stays three tools wide"
        );
        for tool in Tool::ALL {
            assert_eq!(Tool::from_name(tool.name()), Some(tool));
        }
        assert_eq!(Tool::from_name("afl"), None);
    }

    #[test]
    fn only_pfuzzer_records_an_explicit_decision_stream() {
        let info = pdf_subjects::by_name("csv").unwrap();
        let p = run_tool_seeded(Tool::PFuzzer, &info, 300, 1);
        assert!(!p.decisions.is_empty());
        assert_eq!(p.stats.decisions, p.decisions.len() as u64);
        let a = run_tool_seeded(Tool::Afl, &info, 300, 1);
        assert!(a.decisions.is_empty());
        assert!(a.stats.decisions > 0, "AFL still counts its RNG draws");
        let k = run_tool_seeded(Tool::Klee, &info, 300, 1);
        assert!(k.decisions.is_empty());
        assert_eq!(k.stats.decisions, 0, "BFS KLEE draws nothing");
    }

    #[test]
    fn outcome_digest_is_stable_and_discriminating() {
        let info = pdf_subjects::by_name("ini").unwrap();
        let a = run_tool_seeded(Tool::PFuzzer, &info, 300, 1);
        let b = run_tool_seeded(Tool::PFuzzer, &info, 300, 1);
        assert_eq!(outcome_digest(&a), outcome_digest(&b));
        let c = run_tool_seeded(Tool::PFuzzer, &info, 300, 2);
        assert_ne!(outcome_digest(&a), outcome_digest(&c));
        let d = run_tool_seeded(Tool::Afl, &info, 300, 1);
        assert_ne!(outcome_digest(&a), outcome_digest(&d));
    }

    /// Deterministic fields only — stats carry wall-clock times that
    /// legitimately differ between runs.
    fn assert_outcomes_identical(a: &[Outcome], b: &[Outcome]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.tool, y.tool);
            assert_eq!(x.subject, y.subject);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.valid_inputs, y.valid_inputs);
            assert_eq!(x.valid_found_at, y.valid_found_at);
            assert_eq!(x.execs, y.execs);
            assert_eq!(x.valid_branches, y.valid_branches);
            assert_eq!(x.all_branches, y.all_branches);
            assert_eq!(x.decisions, y.decisions);
            assert_eq!(x.stats.executions, y.stats.executions);
            assert_eq!(x.stats.events, y.stats.events);
            assert_eq!(x.stats.valid_inputs, y.stats.valid_inputs);
            assert_eq!(x.stats.queue_depth, y.stats.queue_depth);
            assert_eq!(x.stats.decisions, y.stats.decisions);
            assert_eq!(x.stats.decision_digest, y.stats.decision_digest);
            assert_eq!(outcome_digest(x), outcome_digest(y));
        }
    }

    #[test]
    fn matrix_cells_cover_the_full_matrix_in_order() {
        let cells = matrix_cells(&budget());
        // 5 subjects × (AFL 2 seeds + KLEE 1 seed + pFuzzer 2 seeds)
        assert_eq!(cells.len(), 5 * (2 + 1 + 2));
        let b = budget();
        for c in &cells {
            if c.tool == Tool::Afl {
                assert_eq!(c.execs, b.execs * b.afl_throughput);
            } else {
                assert_eq!(c.execs, b.execs);
            }
        }
        let klee: Vec<_> = cells.iter().filter(|c| c.tool == Tool::Klee).collect();
        assert_eq!(klee.len(), 5);
        assert!(klee.iter().all(|c| c.seed == b.seeds[0]));
        // cells of one (subject, tool) pair are contiguous
        let mut seen = Vec::new();
        for c in &cells {
            let key = (c.info.name, c.tool);
            if seen.last() != Some(&key) {
                assert!(!seen.contains(&key), "group {key:?} split");
                seen.push(key);
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn parallel_cells_match_serial_cells() {
        let budget = EvalBudget {
            execs: 300,
            seeds: vec![1, 2],
            afl_throughput: 2,
        };
        let cells = matrix_cells(&budget);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        assert!(serial.iter().all(|c| !c.is_poisoned()));
        assert!(parallel.iter().all(|c| !c.is_poisoned()));
        let serial = completed_outcomes(serial);
        let parallel = completed_outcomes(parallel);
        assert_outcomes_identical(&serial, &parallel);
        let collapsed = collapse_matrix(parallel);
        assert_eq!(collapsed.len(), 15);
    }

    #[test]
    fn collapse_matches_run_tool() {
        let budget = EvalBudget {
            execs: 300,
            seeds: vec![1, 2],
            afl_throughput: 2,
        };
        let info = pdf_subjects::by_name("csv").unwrap();
        let cells: Vec<MatrixCell> = matrix_cells(&budget)
            .into_iter()
            .filter(|c| c.info.name == "csv")
            .collect();
        let collapsed = collapse_matrix(completed_outcomes(run_cells(&cells, 2)));
        assert_eq!(collapsed.len(), 3);
        for (got, tool) in collapsed.iter().zip(Tool::ALL) {
            let want = run_tool(tool, &info, &budget);
            assert_outcomes_identical(std::slice::from_ref(got), std::slice::from_ref(&want));
        }
    }

    #[test]
    fn run_cells_handles_empty_and_oversized_jobs() {
        assert!(run_cells(&[], 8).is_empty());
        let budget = EvalBudget {
            execs: 100,
            seeds: vec![1],
            afl_throughput: 1,
        };
        let cells: Vec<MatrixCell> = matrix_cells(&budget)
            .into_iter()
            .filter(|c| c.info.name == "ini" && c.tool == Tool::Afl)
            .collect();
        assert_eq!(cells.len(), 1);
        // more jobs than cells is clamped, not an error
        let out = run_cells(&cells, 64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outcome().expect("completed").seed, 1);
    }

    #[test]
    fn exec_modes_thread_through_the_seeded_runner() {
        let info = pdf_subjects::by_name("arith").unwrap();
        // the short form IS full mode
        let full = run_tool_seeded(Tool::PFuzzer, &info, 400, 1);
        let explicit = run_tool_seeded_in(Tool::PFuzzer, &info, 400, 1, ExecMode::Full);
        assert_eq!(outcome_digest(&full), outcome_digest(&explicit));
        for mode in [ExecMode::Fast, ExecMode::Tiered] {
            for tool in [Tool::PFuzzer, Tool::PFuzzerFleet] {
                let a = run_tool_seeded_in(tool, &info, 2_000, 3, mode);
                let b = run_tool_seeded_in(tool, &info, 2_000, 3, mode);
                assert_eq!(
                    outcome_digest(&a),
                    outcome_digest(&b),
                    "{} in {mode:?} not deterministic",
                    tool.name()
                );
                assert!(
                    !a.valid_inputs.is_empty(),
                    "{} in {mode:?} found nothing",
                    tool.name()
                );
            }
            // AFL has no tiers: the mode changes nothing
            let afl = run_tool_seeded_in(Tool::Afl, &info, 400, 1, mode);
            let afl_full = run_tool_seeded(Tool::Afl, &info, 400, 1);
            assert_eq!(outcome_digest(&afl), outcome_digest(&afl_full));
        }
    }

    #[test]
    fn attempt_zero_runs_the_original_seed() {
        assert_eq!(attempt_seed(42, 0), 42);
        assert_ne!(attempt_seed(42, 1), 42);
        assert_ne!(attempt_seed(42, 1), attempt_seed(42, 2));
    }

    #[test]
    fn healthy_cell_completes_with_zero_retries() {
        let cell = MatrixCell {
            info: pdf_subjects::by_name("ini").unwrap(),
            tool: Tool::PFuzzer,
            execs: 200,
            seed: 1,
            exec_mode: ExecMode::Full,
        };
        let co = run_cell_supervised(&cell, &SupervisorConfig::default());
        let o = co.outcome().expect("healthy cell completes");
        assert_eq!(o.stats.retries, 0);
        assert_eq!(o.seed, 1);
        // and digests identically to an unsupervised run
        let plain = run_tool_seeded(Tool::PFuzzer, &cell.info, 200, 1);
        assert_eq!(outcome_digest(o), outcome_digest(&plain));
    }

    #[test]
    fn always_hanging_cell_is_poisoned_not_aborted() {
        use pdf_subjects::chaos::{self, ChaosConfig};
        // every execution burns its fuel, on every retry: the chaos
        // schedule depends on the chaos seed, not the campaign seed
        let cfg = ChaosConfig {
            hang_per_mille: 1000,
            ..ChaosConfig::silent(7)
        };
        let base = pdf_subjects::by_name("dyck").unwrap();
        let info = SubjectInfo {
            subject: chaos::wrap(base.subject, cfg),
            ..base
        };
        let cell = MatrixCell {
            info,
            tool: Tool::PFuzzer,
            execs: 50,
            seed: 3,
            exec_mode: ExecMode::Full,
        };
        let sup = SupervisorConfig { max_retries: 1 };
        let co = run_cell_supervised(&cell, &sup);
        match co {
            CellOutcome::Poisoned(p) => {
                assert_eq!(p.attempts, 2);
                assert_eq!(p.seed, 3);
                assert!(p.reason.contains("hung"), "reason: {}", p.reason);
            }
            CellOutcome::Completed(_) => panic!("all-hang cell must poison"),
        }
        let summary = supervision_summary(&[run_cell_supervised(&cell, &sup)]);
        assert!(summary.contains("1 poisoned"), "{summary}");
        assert!(summary.contains("POISONED"), "{summary}");
    }
}

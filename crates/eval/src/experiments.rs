//! The experiments of Section 5, one function per table/figure.

use pdf_afl::{AflConfig, AflFuzzer};
use pdf_core::{DriverConfig, Fuzzer, TraceStep};
use pdf_subjects::evaluation_subjects;
use pdf_tokens::{inventory, Dictionary, TokenCoverage, TokenInventory, TokenMiner};

use pdf_gen::EvolveConfig;
use pdf_grammar::GrammarFile;

use crate::coverage::{coverage_universe, relative_coverage};
use crate::runner::{
    collapse_matrix, combined_config_for, completed_outcomes, matrix_cells, run_cells,
    run_tool_seeded, EvalBudget, Outcome, Tool,
};

/// Table 1: the subjects with their access dates and original LoC.
pub fn table1_subjects() -> Vec<(&'static str, &'static str, usize)> {
    evaluation_subjects()
        .iter()
        .map(|s| (s.name, s.accessed, s.original_loc))
        .collect()
}

/// Figure 1: the prefix-extension walkthrough on the arithmetic-
/// expression subject. Returns the trace up to (and including) the
/// first valid input.
pub fn fig1_walkthrough(seed: u64, max_execs: u64) -> (Vec<TraceStep>, Option<Vec<u8>>) {
    let cfg = DriverConfig {
        seed,
        max_execs,
        max_valid_inputs: Some(1),
        trace: true,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
    let first = report.valid_inputs.first().cloned();
    (report.trace, first)
}

/// Runs the full 5-subjects × 3-tools matrix once; every downstream
/// figure reads from these outcomes. Serial — equivalent to
/// [`run_matrix_jobs`] with one job.
pub fn run_matrix(budget: &EvalBudget) -> Vec<Outcome> {
    run_matrix_jobs(budget, 1)
}

/// Runs the matrix with its (subject, tool, seed) cells fanned out over
/// `jobs` worker threads. Every cell is an independent seeded campaign,
/// so the collapsed result is identical to the serial matrix for any
/// `jobs` value (only the wall-clock stats differ).
pub fn run_matrix_jobs(budget: &EvalBudget, jobs: usize) -> Vec<Outcome> {
    collapse_matrix(completed_outcomes(run_cells(&matrix_cells(budget), jobs)))
}

/// One row of Figure 2: relative branch coverage per tool on a subject.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Subject name.
    pub subject: &'static str,
    /// Coverage percent per tool, in [`Tool::ALL`] order (AFL, KLEE,
    /// pFuzzer).
    pub coverage: [f64; 3],
}

/// Figure 2: branch coverage obtained by the valid inputs of each tool.
pub fn fig2_coverage(outcomes: &[Outcome]) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for info in evaluation_subjects() {
        let subject_outcomes: Vec<&Outcome> =
            outcomes.iter().filter(|o| o.subject == info.name).collect();
        if subject_outcomes.is_empty() {
            continue;
        }
        let universe = coverage_universe(&info, &subject_outcomes);
        let mut coverage = [0.0; 3];
        for (i, tool) in Tool::ALL.iter().enumerate() {
            if let Some(o) = subject_outcomes.iter().find(|o| o.tool == *tool) {
                coverage[i] = relative_coverage(o, &universe);
            }
        }
        rows.push(Fig2Row {
            subject: info.name,
            coverage,
        });
    }
    rows
}

/// Tables 2–4 (and the prose inventories for ini and csv): the token
/// inventory of every subject.
pub fn token_tables() -> Vec<TokenInventory> {
    ["ini", "csv", "cjson", "tinyC", "mjs"]
        .iter()
        .filter_map(|s| inventory(s))
        .collect()
}

/// One cell group of Figure 3: the tokens a tool generated on a subject,
/// bucketed by token length.
#[derive(Debug, Clone)]
pub struct Fig3Cell {
    /// Subject name.
    pub subject: &'static str,
    /// Tool.
    pub tool: Tool,
    /// `(length, found, total)` per inventory length, ascending.
    pub by_length: Vec<(usize, usize, usize)>,
    /// The found token names (for inspection).
    pub found: Vec<&'static str>,
}

/// Figure 3: tokens generated per subject and tool, grouped by length.
pub fn fig3_tokens(outcomes: &[Outcome]) -> Vec<Fig3Cell> {
    let mut cells = Vec::new();
    for o in outcomes {
        let Some(mut cov) = TokenCoverage::new(o.subject) else {
            continue;
        };
        for input in &o.valid_inputs {
            cov.add_input(input);
        }
        let inv = cov.inventory().clone();
        let by_length = inv
            .lengths()
            .into_iter()
            .map(|l| (l, cov.found_of_length(l), inv.count_of_length(l)))
            .collect();
        cells.push(Fig3Cell {
            subject: o.subject,
            tool: o.tool,
            by_length,
            found: cov.found_names(),
        });
    }
    cells
}

/// One row of the Section 5.3 headline: a tool's aggregate token
/// coverage for short (≤ 3) and long (> 3) tokens across all subjects.
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// Tool.
    pub tool: Tool,
    /// (found, total) over tokens of length ≤ 3, summed across subjects.
    pub short: (usize, usize),
    /// (found, total) over tokens of length > 3.
    pub long: (usize, usize),
}

impl HeadlineRow {
    /// Percentage of short tokens found.
    pub fn short_pct(&self) -> f64 {
        percent(self.short)
    }

    /// Percentage of long tokens found.
    pub fn long_pct(&self) -> f64 {
        percent(self.long)
    }
}

fn percent((found, total): (usize, usize)) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * found as f64 / total as f64
    }
}

/// The Section 5.3 headline aggregates ("Across all subjects, for
/// tokens of length ≤ 3, AFL finds 91.5%, KLEE 28.7%, and pFuzzer
/// 81.9%" / "length > 3: 5%, 7.5%, 52.5%").
pub fn headline_aggregates(outcomes: &[Outcome]) -> Vec<HeadlineRow> {
    Tool::ALL
        .iter()
        .map(|&tool| {
            let mut short = (0, 0);
            let mut long = (0, 0);
            for o in outcomes.iter().filter(|o| o.tool == tool) {
                let Some(mut cov) = TokenCoverage::new(o.subject) else {
                    continue;
                };
                for input in &o.valid_inputs {
                    cov.add_input(input);
                }
                let s = cov.fraction_in(1, 3);
                let l = cov.fraction_in(4, usize::MAX);
                short.0 += s.0;
                short.1 += s.1;
                long.0 += l.0;
                long.1 += l.1;
            }
            HeadlineRow { tool, short, long }
        })
        .collect()
}

/// When a token was first produced: one row per (subject, tool, token).
#[derive(Debug, Clone)]
pub struct DiscoveryRow {
    /// Subject name.
    pub subject: &'static str,
    /// Tool.
    pub tool: Tool,
    /// Token name.
    pub token: &'static str,
    /// Token length in the inventory.
    pub length: usize,
    /// Executions spent when the token first appeared in a valid input
    /// (`None` = never found within the budget).
    pub found_at: Option<u64>,
}

/// The "fewer tests by orders of magnitude" measurement: for every
/// inventory token, the number of executions each tool needed before
/// the token appeared in a valid input.
pub fn token_discovery(outcomes: &[Outcome]) -> Vec<DiscoveryRow> {
    let mut rows = Vec::new();
    for o in outcomes {
        let Some(inv) = inventory(o.subject) else {
            continue;
        };
        for token in &inv.tokens {
            let mut found_at = None;
            for (input, execs) in o.valid_inputs.iter().zip(&o.valid_found_at) {
                if pdf_tokens::found_tokens(o.subject, input).contains(&token.name) {
                    found_at = Some(*execs);
                    break;
                }
            }
            rows.push(DiscoveryRow {
                subject: o.subject,
                tool: o.tool,
                token: token.name,
                length: token.length,
                found_at,
            });
        }
    }
    rows
}

/// One campaign's side of the sharding experiment
/// ([`FleetComparison`]): its token discoveries and what they cost.
#[derive(Debug, Clone)]
pub struct FleetSide {
    /// Inventory tokens found, in discovery-cost order.
    pub tokens: Vec<&'static str>,
    /// Total executions spent when the last token of the *single*
    /// campaign's token set had been found; `None` when that exact set
    /// was never covered. (For the single campaign itself this is
    /// always `Some`: the cost of its own last token.)
    pub execs_to_cover: Option<u64>,
    /// Total executions spent when this campaign had found as *many*
    /// distinct tokens as the single campaign — the Figure-3 y-axis is
    /// a count, so this is the identity-free version of
    /// `execs_to_cover`. `None` when the count was never reached.
    pub execs_to_count: Option<u64>,
    /// Executions actually spent in total.
    pub total_execs: u64,
}

/// Result of the sharding experiment: a single-shard campaign of
/// `budget` executions vs a cooperative fleet vs N independent shards,
/// each shard also running `budget` executions (so the fleet and the
/// ensemble spend `shards × budget` in total — the paper's "N
/// restarts" baseline). Fleet/ensemble costs are total executions
/// summed across shards (within-epoch lockstep upper bound — see
/// [`FleetReport::valid_found_at`](pdf_fleet::FleetReport::valid_found_at));
/// divide by `shards` for the wall-clock (per-worker) cost.
#[derive(Debug, Clone)]
pub struct FleetComparison {
    /// Subject name.
    pub subject: &'static str,
    /// Fleet shard count.
    pub shards: usize,
    /// Per-shard executions between fleet sync epochs.
    pub sync_every: u64,
    /// Per-shard (and single-campaign) execution budget.
    pub budget: u64,
    /// The single-shard driver.
    pub single: FleetSide,
    /// The cooperative fleet (syncing every `sync_every` execs).
    pub fleet: FleetSide,
    /// The same shards with no mid-campaign cooperation (one sync at
    /// the very end, which merges reports but can no longer help the
    /// search).
    pub independent: FleetSide,
}

/// For every inventory token some input produced, the discovery cost of
/// the *first* input producing it (inputs paired with their costs, in
/// cost order).
fn token_costs(
    subject: &'static str,
    inputs: &[Vec<u8>],
    costs: &[u64],
) -> Vec<(&'static str, u64)> {
    let mut found: Vec<(&'static str, u64)> = Vec::new();
    for (input, &cost) in inputs.iter().zip(costs) {
        for token in pdf_tokens::found_tokens(subject, input) {
            match found.iter_mut().find(|(name, _)| *name == token) {
                Some(slot) => slot.1 = slot.1.min(cost),
                None => found.push((token, cost)),
            }
        }
    }
    found.sort_by_key(|&(name, cost)| (cost, name));
    found
}

/// Builds one [`FleetSide`] from discovery costs, measured against the
/// single campaign's token set.
fn fleet_side(
    costs: &[(&'static str, u64)],
    single_costs: &[(&'static str, u64)],
    total_execs: u64,
) -> FleetSide {
    let execs_to_cover = single_costs
        .iter()
        .map(|&(name, _)| costs.iter().find(|&&(n, _)| n == name).map(|&(_, c)| c))
        .collect::<Option<Vec<u64>>>()
        .map(|c| c.into_iter().max().unwrap_or(0));
    // costs are sorted ascending, so the n-th entry is the cost of
    // reaching n distinct tokens
    let execs_to_count = match single_costs.len() {
        0 => Some(0),
        n => costs.get(n - 1).map(|&(_, c)| c),
    };
    FleetSide {
        tokens: costs.iter().map(|&(n, _)| n).collect(),
        execs_to_cover,
        execs_to_count,
        total_execs,
    }
}

/// The sharding experiment (EXPERIMENTS.md "Fleet sharding"): runs the
/// plain single-shard driver for `budget` executions, then a
/// cooperative [`pdf_fleet::Fleet`] of `shards` workers and the same
/// shards run independently (no mid-campaign sync), each shard with
/// the same `budget`, and reports how many total executions each side
/// needed to match the single campaign's token discoveries.
/// Deterministic in all arguments.
pub fn fleet_vs_single(
    info: &pdf_subjects::SubjectInfo,
    budget: u64,
    seed: u64,
    shards: usize,
    sync_every: u64,
) -> FleetComparison {
    let single = Fuzzer::new(
        info.subject,
        DriverConfig {
            seed,
            max_execs: budget,
            ..DriverConfig::default()
        },
    )
    .run();
    let single_costs = token_costs(info.name, &single.valid_inputs, &single.valid_found_at);

    let run_fleet = |sync: u64| {
        let base = DriverConfig {
            seed,
            max_execs: budget.max(1),
            ..DriverConfig::default()
        };
        let report = pdf_fleet::Fleet::new(
            info.subject,
            pdf_fleet::FleetConfig::new(shards, sync, base),
        )
        .expect("fleet_vs_single called with a valid shard/sync shape")
        .run();
        let costs = token_costs(info.name, &report.valid_inputs, &report.valid_found_at);
        fleet_side(&costs, &single_costs, report.total_execs)
    };
    let fleet = run_fleet(sync_every);
    // syncing only once, after every shard has exhausted its budget,
    // is exactly the N-independent-restarts baseline
    let independent = run_fleet(budget.max(1));

    FleetComparison {
        subject: info.name,
        shards,
        sync_every,
        budget,
        single: fleet_side(&single_costs, &single_costs, single.execs),
        fleet,
        independent,
    }
}

/// One row of the mined-inventory table (`evalrunner --dict-out`): how
/// much of a subject's *literal* multi-character token inventory (the
/// Tables 2–4 keywords and operators, excluding classes like `number`
/// or `identifier`) a mining campaign recovered without any grammar.
#[derive(Debug, Clone)]
pub struct MinedInventoryRow {
    /// Subject name.
    pub subject: &'static str,
    /// Executions the mining campaign actually spent.
    pub execs: u64,
    /// Tokens in the mined dictionary.
    pub mined: usize,
    /// (mined, total) over literal inventory tokens of length ≥ 2.
    pub multi: (usize, usize),
    /// (mined, total) over literal inventory tokens of length ≥ 4 — the
    /// Figure-3 long-token bucket where AFL and KLEE collapse.
    pub long: (usize, usize),
}

/// Scores a mined dictionary against the subject's inventory. Only
/// *literal* inventory tokens participate (name spelled exactly at its
/// table length — `while` at 5); class tokens (`number`, `string`,
/// `identifier`) have no single spelling a dictionary entry could match.
fn mined_inventory_row(subject: &'static str, execs: u64, dict: &Dictionary) -> MinedInventoryRow {
    let inv = inventory(subject).expect("mining runs on evaluation subjects");
    let hits = |min_len: usize| {
        let literal: Vec<&str> = inv
            .tokens
            .iter()
            .filter(|t| t.name.len() == t.length && t.length >= min_len)
            .map(|t| t.name)
            .collect();
        let found = literal
            .iter()
            .filter(|name| dict.contains(name.as_bytes()))
            .count();
        (found, literal.len())
    };
    MinedInventoryRow {
        subject,
        execs,
        mined: dict.len(),
        multi: hits(2),
        long: hits(4),
    }
}

/// Mines a dictionary for one subject: runs a token-mining pFuzzer
/// campaign ([`DriverConfig::mine_tokens`]) for `execs` executions,
/// feeds the observed comparison operands and the valid-input corpus to
/// a [`TokenMiner`], and returns the mined [`Dictionary`] with its
/// inventory scorecard. Deterministic in `(execs, seed)`.
pub fn mine_subject_dictionary(
    info: &pdf_subjects::SubjectInfo,
    execs: u64,
    seed: u64,
) -> (Dictionary, MinedInventoryRow) {
    let cfg = DriverConfig {
        seed,
        max_execs: execs,
        mine_tokens: true,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    let mut miner = TokenMiner::new();
    for (token, count) in &report.mined_tokens {
        for _ in 0..*count {
            miner.observe_comparison(token);
        }
    }
    for input in &report.valid_inputs {
        miner.observe_corpus_input(input);
    }
    let dict = miner.mine();
    pdf_obs::record(|m| m.tokens_mined.add(dict.len() as u64));
    let row = mined_inventory_row(info.name, report.execs, &dict);
    (dict, row)
}

/// Mines every evaluation subject at the same `(execs, seed)` budget
/// and merges the results into one union [`Dictionary`] — exactly what
/// `evalrunner --dict-out` writes. Per-subject token order is the
/// miner's rank order and subjects merge in paper order, so the union
/// is deterministic; [`Dictionary::from_tokens`] keeps the first
/// occurrence of a token mined by several subjects.
pub fn mine_union_dictionary(execs: u64, seed: u64) -> (Dictionary, Vec<MinedInventoryRow>) {
    let mut rows = Vec::new();
    let mut union: Vec<Vec<u8>> = Vec::new();
    for info in evaluation_subjects() {
        let (dict, row) = mine_subject_dictionary(&info, execs, seed);
        union.extend(dict.into_tokens());
        rows.push(row);
    }
    (Dictionary::from_tokens(union), rows)
}

/// One row of the dictionary study (`evalrunner --dict-in`): a tool run
/// with or without the mined dictionary, scored by token coverage at
/// equal execution budget.
#[derive(Debug, Clone)]
pub struct DictStudyRow {
    /// Subject name.
    pub subject: &'static str,
    /// Tool ([`Tool::PFuzzer`] or [`Tool::Afl`]).
    pub tool: Tool,
    /// Whether the mined dictionary was fed to the tool.
    pub with_dict: bool,
    /// Executions actually spent.
    pub execs: u64,
    /// Valid inputs produced.
    pub valid_inputs: usize,
    /// (found, total) over inventory tokens of length ≤ 3.
    pub short: (usize, usize),
    /// (found, total) over inventory tokens of length ≥ 4.
    pub long: (usize, usize),
}

fn study_row(
    subject: &'static str,
    tool: Tool,
    with_dict: bool,
    execs: u64,
    inputs: &[Vec<u8>],
) -> DictStudyRow {
    let mut cov = TokenCoverage::new(subject).expect("study subjects have inventories");
    for input in inputs {
        cov.add_input(input);
    }
    DictStudyRow {
        subject,
        tool,
        with_dict,
        execs,
        valid_inputs: inputs.len(),
        short: cov.fraction_in(1, 3),
        long: cov.fraction_in(4, usize::MAX),
    }
}

/// The dictionary study: pFuzzer and AFL each run twice on `info` at
/// the same `(execs, seed)` budget — once bare, once fed the mined
/// dictionary (pFuzzer as whole-token substitution candidates, AFL as
/// token-preserving havoc per [`pdf_afl::AflConfig::preserve_tokens`]).
/// Returns four [`DictStudyRow`]s in (pFuzzer, AFL) × (bare, dict)
/// order. Deterministic in all arguments.
pub fn dict_vs_baseline(
    info: &pdf_subjects::SubjectInfo,
    dict: &Dictionary,
    execs: u64,
    seed: u64,
) -> Vec<DictStudyRow> {
    let mut rows = Vec::new();
    for with_dict in [false, true] {
        let cfg = DriverConfig {
            seed,
            max_execs: execs,
            dictionary: if with_dict {
                dict.tokens().to_vec()
            } else {
                Vec::new()
            },
            ..DriverConfig::default()
        };
        let r = Fuzzer::new(info.subject, cfg).run();
        rows.push(study_row(
            info.name,
            Tool::PFuzzer,
            with_dict,
            r.execs,
            &r.valid_inputs,
        ));
    }
    for with_dict in [false, true] {
        let cfg = AflConfig {
            seed,
            max_execs: execs,
            dictionary: if with_dict {
                dict.tokens().to_vec()
            } else {
                Vec::new()
            },
            preserve_tokens: with_dict,
            ..AflConfig::default()
        };
        let r = AflFuzzer::new(info.subject, cfg).run();
        rows.push(study_row(
            info.name,
            Tool::Afl,
            with_dict,
            r.execs,
            &r.valid_inputs,
        ));
    }
    rows
}

/// One row of the grammar-mining scorecard (`evalrunner
/// --grammar-out`): what the combined campaign mined and learned on one
/// subject.
#[derive(Debug, Clone)]
pub struct GrammarMineRow {
    /// Subject name.
    pub subject: &'static str,
    /// Instrumented executions spent (explore + fleet stages).
    pub execs: u64,
    /// Nonterminals in the mined grammar.
    pub rules: usize,
    /// Alternatives across all rules (weight-table width).
    pub alts: usize,
    /// Inputs the generator flood produced (fast tier).
    pub generated: u64,
    /// Generated inputs the subject accepted (duplicates included).
    pub generated_valid: u64,
    /// Distinct generator-found valid inputs promoted into fleet queues.
    pub promoted: u64,
    /// The persisted `pdf-grammar v1` file digest; zero when the flood
    /// was skipped.
    pub digest: u64,
    /// Why the flood did not run, when it did not.
    pub skipped: Option<String>,
}

/// Runs the combined three-stage campaign on one subject
/// ([`combined_config_for`] shape) and returns the learned
/// grammar + weights (when the flood ran) with its scorecard row —
/// exactly what `evalrunner --grammar-out` persists per subject.
/// Deterministic in `(execs, seed)`.
pub fn mine_subject_grammar(
    info: &pdf_subjects::SubjectInfo,
    execs: u64,
    seed: u64,
) -> (Option<GrammarFile>, GrammarMineRow) {
    let cfg = combined_config_for(execs, seed);
    let report = pdf_gen::run_combined(info.subject, &cfg)
        .expect("combined_config_for produces a valid fleet shape");
    let row = GrammarMineRow {
        subject: info.name,
        execs: report.explore_execs + report.fleet.total_execs,
        rules: report.grammar_rules,
        alts: report.grammar_file().map_or(0, GrammarFile::alt_count),
        generated: report.flood.as_ref().map_or(0, |f| f.generated),
        generated_valid: report.flood.as_ref().map_or(0, |f| f.generated_valid),
        promoted: report.promoted,
        digest: report.grammar_digest,
        skipped: report.flood_skipped.clone(),
    };
    (report.grammar, row)
}

/// One row of the grammar-generation study (`evalrunner --grammar-in`):
/// one mode run on a subject at equal budget, scored by Figure-3 token
/// coverage and valid-input branch coverage.
#[derive(Debug, Clone)]
pub struct GrammarStudyRow {
    /// Subject name.
    pub subject: &'static str,
    /// `"pFuzzer"` (paper's tool alone), `"flood"` (compiled generator
    /// alone, seeded from the persisted grammar + learned weights) or
    /// `"combined"` (the full three-stage pipeline, re-mining).
    pub mode: &'static str,
    /// Instrumented executions spent.
    pub execs: u64,
    /// Generator fast-tier executions (zero for the pFuzzer row).
    pub generated: u64,
    /// Distinct valid inputs produced.
    pub valid_inputs: usize,
    /// Branches covered by the valid inputs.
    pub branches: usize,
    /// (found, total) over inventory tokens of length ≤ 3.
    pub short: (usize, usize),
    /// (found, total) over inventory tokens of length ≥ 4.
    pub long: (usize, usize),
}

fn grammar_study_row(
    subject: &'static str,
    mode: &'static str,
    execs: u64,
    generated: u64,
    inputs: &[Vec<u8>],
    branches: usize,
) -> GrammarStudyRow {
    let mut cov = TokenCoverage::new(subject).expect("study subjects have inventories");
    for input in inputs {
        cov.add_input(input);
    }
    GrammarStudyRow {
        subject,
        mode,
        execs,
        generated,
        valid_inputs: inputs.len(),
        branches,
        short: cov.fraction_in(1, 3),
        long: cov.fraction_in(4, usize::MAX),
    }
}

/// The grammar-generation study: on one subject, at the same
/// `(execs, seed)` budget, (1) pFuzzer alone, (2) the compiled
/// generator flooding from a previously persisted grammar + learned
/// weights (no exploration — the `--grammar-in` reuse path), and
/// (3) the full combined pipeline re-mining from scratch. Returns three
/// [`GrammarStudyRow`]s in that order. The flood row spends its budget
/// as fast-tier generations (plus one coverage escalation per fresh
/// distinct valid input); a grammar whose cheapest expansions cycle is
/// reported with zeroed generator columns rather than aborting the
/// study. Deterministic in all arguments.
pub fn grammar_vs_baseline(
    info: &pdf_subjects::SubjectInfo,
    file: &GrammarFile,
    execs: u64,
    seed: u64,
) -> Vec<GrammarStudyRow> {
    let alone = run_tool_seeded(Tool::PFuzzer, info, execs, seed);
    let mut rows = vec![grammar_study_row(
        info.name,
        "pFuzzer",
        alone.execs,
        0,
        &alone.valid_inputs,
        alone.valid_branches.len(),
    )];

    let cfg = combined_config_for(execs, seed);
    let epochs = 8usize;
    rows.push(
        match pdf_gen::CompiledGrammar::compile(file, cfg.max_depth) {
            Ok(compiled) => {
                let report = pdf_gen::evolve(
                    info.subject,
                    compiled,
                    EvolveConfig {
                        seed,
                        epochs,
                        batch: (execs as usize / epochs).max(1),
                        ..EvolveConfig::default()
                    },
                );
                grammar_study_row(
                    info.name,
                    "flood",
                    report.distinct_valid.len() as u64, // coverage escalations
                    report.generated,
                    &report.distinct_valid,
                    report.branches.len(),
                )
            }
            Err(_) => grammar_study_row(info.name, "flood", 0, 0, &[], 0),
        },
    );

    let combined = run_tool_seeded(Tool::GrammarGen, info, execs, seed);
    rows.push(grammar_study_row(
        info.name,
        "combined",
        combined.execs,
        combined.stats.executions - combined.execs,
        &combined.valid_inputs,
        combined.valid_branches.len(),
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1_subjects();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], ("ini", "2018-10-25", 293));
        assert_eq!(rows[4], ("mjs", "2018-06-21", 10_920));
    }

    #[test]
    fn fleet_vs_single_is_deterministic_and_budget_bounded() {
        let info = pdf_subjects::by_name("cjson").unwrap();
        let a = fleet_vs_single(&info, 1_000, 1, 2, 250);
        let b = fleet_vs_single(&info, 1_000, 1, 2, 250);
        assert_eq!(a.single.tokens, b.single.tokens);
        assert_eq!(a.fleet.tokens, b.fleet.tokens);
        assert_eq!(a.fleet.execs_to_cover, b.fleet.execs_to_cover);
        assert_eq!(a.fleet.execs_to_count, b.fleet.execs_to_count);
        assert!(a.single.total_execs <= 1_000);
        // fleet and ensemble each get `budget` per shard
        assert!(a.fleet.total_execs <= 2_000);
        assert!(a.independent.total_execs <= 2_000);
        // the single campaign trivially covers its own token set, at
        // the same cost as reaching its own count
        assert_eq!(
            a.single.execs_to_cover, a.single.execs_to_count,
            "single side must be self-consistent"
        );
        assert_eq!(a.shards, 2);
    }

    #[test]
    fn fig1_trace_reaches_a_valid_input() {
        let (trace, first) = fig1_walkthrough(1, 4_000);
        assert!(!trace.is_empty());
        let input = first.expect("walkthrough found a valid input");
        assert!(pdf_subjects::arith::subject().run(&input).valid);
        // the last trace entries include an accepted step
        assert!(trace.iter().any(|s| s.valid));
    }

    #[test]
    fn token_tables_cover_all_subjects() {
        let tables = token_tables();
        assert_eq!(tables.len(), 5);
        assert_eq!(tables[2].total(), 12); // Table 2
        assert_eq!(tables[3].total(), 15); // Table 3
        assert_eq!(tables[4].total(), 99); // Table 4
    }

    #[test]
    fn mined_dictionary_recovers_inventory_keywords() {
        let info = pdf_subjects::by_name("tinyC").unwrap();
        let (dict, row) = mine_subject_dictionary(&info, 3_000, 1);
        assert!(!dict.is_empty(), "mining tinyC must surface tokens");
        assert_eq!(row.subject, "tinyC");
        assert!(row.execs <= 3_000);
        assert_eq!(row.mined, dict.len());
        // tinyC's literal multi-char inventory is if/do/else/while
        assert_eq!(row.multi.1, 4);
        assert_eq!(row.long.1, 2);
        assert!(
            row.multi.0 > 0,
            "comparison mining must recover at least one keyword, dict: {:?}",
            dict.tokens()
        );
        // deterministic in (execs, seed)
        let (again, _) = mine_subject_dictionary(&info, 3_000, 1);
        assert_eq!(dict.tokens(), again.tokens());
    }

    #[test]
    fn dict_study_produces_four_bounded_rows() {
        let info = pdf_subjects::by_name("cjson").unwrap();
        let dict =
            Dictionary::from_tokens(vec![b"true".to_vec(), b"false".to_vec(), b"null".to_vec()]);
        let rows = dict_vs_baseline(&info, &dict, 800, 1);
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows.iter()
                .map(|r| (r.tool, r.with_dict))
                .collect::<Vec<_>>(),
            vec![
                (Tool::PFuzzer, false),
                (Tool::PFuzzer, true),
                (Tool::Afl, false),
                (Tool::Afl, true),
            ]
        );
        for row in &rows {
            assert_eq!(row.subject, "cjson");
            assert!(row.execs <= 800);
            assert!(row.short.0 <= row.short.1);
            assert!(row.long.0 <= row.long.1);
            assert_eq!(row.long.1, 3);
        }
    }

    #[test]
    fn grammar_pipeline_mines_persists_and_studies() {
        let info = pdf_subjects::by_name("cjson").unwrap();
        let (file, row) = mine_subject_grammar(&info, 3_000, 1);
        assert_eq!(row.subject, "cjson");
        assert!(row.execs <= 3_000);
        let file = file.expect("cjson exploration mines a usable grammar");
        assert!(row.skipped.is_none());
        assert!(row.rules > 0);
        assert!(row.alts > 0);
        assert!(row.generated > 0);
        assert_eq!(row.digest, file.digest());
        // determinism: the scorecard is a pure function of (execs, seed)
        let (file2, row2) = mine_subject_grammar(&info, 3_000, 1);
        assert_eq!(row2.digest, row.digest);
        assert_eq!(file2.expect("same campaign").encode(), file.encode());

        let rows = grammar_vs_baseline(&info, &file, 1_000, 1);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.mode).collect::<Vec<_>>(),
            vec!["pFuzzer", "flood", "combined"]
        );
        for r in &rows {
            assert_eq!(r.subject, "cjson");
            assert!(r.short.0 <= r.short.1);
            assert!(r.long.0 <= r.long.1);
        }
        assert!(rows[1].generated > 0, "flood row must generate");
        assert_eq!(rows[0].generated, 0, "pFuzzer row has no generator");
    }

    #[test]
    fn small_matrix_end_to_end() {
        // a miniature end-to-end run of the whole pipeline
        let budget = EvalBudget {
            execs: 400,
            seeds: vec![1],
            afl_throughput: 1,
        };
        let outcomes = run_matrix(&budget);
        assert_eq!(outcomes.len(), 15);
        let fig2 = fig2_coverage(&outcomes);
        assert_eq!(fig2.len(), 5);
        for row in &fig2 {
            for pct in row.coverage {
                assert!((0.0..=100.0).contains(&pct));
            }
        }
        let fig3 = fig3_tokens(&outcomes);
        assert_eq!(fig3.len(), 15);
        let headline = headline_aggregates(&outcomes);
        assert_eq!(headline.len(), 3);
        for row in &headline {
            assert!(row.short.1 > 0);
            assert!(row.long.1 > 0);
            assert!(row.short.0 <= row.short.1);
            assert!(row.long.0 <= row.long.1);
        }
        let discovery = token_discovery(&outcomes);
        // 15 outcomes × inventory sizes: 7+4+12+15+99 per tool
        assert_eq!(discovery.len(), 3 * (7 + 4 + 12 + 15 + 99));
        for row in &discovery {
            if let Some(execs) = row.found_at {
                assert!(execs > 0);
            }
        }
    }
}

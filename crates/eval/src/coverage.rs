//! Relative branch coverage (the Figure 2 measure).
//!
//! The paper measures gcov branch coverage against everything compiled
//! into the binary, including code no input can reach ("we decided to
//! leave those artifacts in ... all tools can still be compared on each
//! individual subject"). Our substitute keeps the comparison semantics:
//! the universe for a subject is the union of branches reached by its
//! reference corpus and by *every* tool run in the experiment, so the
//! per-subject tool ordering — the thing Figure 2 is about — is
//! preserved.

use pdf_runtime::BranchSet;
use pdf_subjects::SubjectInfo;

use crate::runner::Outcome;

/// Builds the coverage universe for a subject from its reference corpus
/// plus all branches any tool touched.
pub fn coverage_universe(info: &SubjectInfo, outcomes: &[&Outcome]) -> BranchSet {
    let mut universe = BranchSet::new();
    for input in (info.corpus)() {
        let exec = info.subject.run(input);
        universe.union_with(&exec.log.branches());
    }
    for o in outcomes {
        universe.union_with(&o.all_branches);
    }
    universe
}

/// Branch coverage of the outcome's *valid inputs* relative to the
/// universe, in percent.
pub fn relative_coverage(outcome: &Outcome, universe: &BranchSet) -> f64 {
    if universe.is_empty() {
        return 0.0;
    }
    let covered = outcome
        .valid_branches
        .iter()
        .filter(|b| universe.contains(b))
        .count();
    100.0 * covered as f64 / universe.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_tool_seeded, Tool};

    #[test]
    fn universe_includes_corpus_branches() {
        let info = pdf_subjects::by_name("arith").unwrap();
        let universe = coverage_universe(&info, &[]);
        assert!(!universe.is_empty());
    }

    #[test]
    fn coverage_is_bounded() {
        let info = pdf_subjects::by_name("csv").unwrap();
        let o = run_tool_seeded(Tool::Afl, &info, 1_000, 1);
        let universe = coverage_universe(&info, &[&o]);
        let pct = relative_coverage(&o, &universe);
        assert!((0.0..=100.0).contains(&pct), "{pct}");
    }

    #[test]
    fn more_budget_does_not_reduce_coverage() {
        let info = pdf_subjects::by_name("ini").unwrap();
        let small = run_tool_seeded(Tool::Afl, &info, 300, 1);
        let large = run_tool_seeded(Tool::Afl, &info, 3_000, 1);
        let universe = coverage_universe(&info, &[&small, &large]);
        assert!(relative_coverage(&large, &universe) >= relative_coverage(&small, &universe));
    }

    #[test]
    fn empty_universe_yields_zero() {
        let info = pdf_subjects::by_name("arith").unwrap();
        let o = run_tool_seeded(Tool::Klee, &info, 10, 1);
        assert_eq!(relative_coverage(&o, &BranchSet::new()), 0.0);
    }
}

//! Plain-text rendering of the tables and figures.

use pdf_tokens::TokenInventory;

use crate::experiments::{
    DictStudyRow, DiscoveryRow, Fig2Row, Fig3Cell, GrammarMineRow, GrammarStudyRow, HeadlineRow,
    MinedInventoryRow,
};
use crate::runner::{CellOutcome, Tool};

/// Renders Table 1 as aligned text.
pub fn render_table1(rows: &[(&'static str, &'static str, usize)]) -> String {
    let mut out = String::from("Table 1. The subjects used for the evaluation.\n");
    out.push_str(&format!(
        "{:<10} {:<12} {:>14}\n",
        "Name", "Accessed", "Lines of Code"
    ));
    for (name, accessed, loc) in rows {
        out.push_str(&format!("{name:<10} {accessed:<12} {loc:>14}\n"));
    }
    out
}

/// Renders Figure 2 as an aligned coverage table (percent per tool).
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let mut out = String::from("Figure 2. Obtained coverage per subject and tool (percent).\n");
    out.push_str(&format!("{:<10}", "Subject"));
    for tool in Tool::ALL {
        out.push_str(&format!("{:>10}", tool.name()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<10}", row.subject));
        for pct in row.coverage {
            out.push_str(&format!("{pct:>10.1}"));
        }
        out.push('\n');
    }
    out
}

/// Renders a token inventory (Tables 2–4 style: count and examples per
/// length).
pub fn render_token_table(inv: &TokenInventory) -> String {
    let mut out = format!("{} tokens and their number for each length.\n", inv.subject);
    out.push_str(&format!("{:<8} {:<4} Examples\n", "Length", "#"));
    for length in inv.lengths() {
        let tokens: Vec<&str> = inv
            .tokens
            .iter()
            .filter(|t| t.length == length)
            .map(|t| t.name)
            .collect();
        let shown = tokens.iter().take(8).copied().collect::<Vec<_>>().join(" ");
        let ellipsis = if tokens.len() > 8 { " ..." } else { "" };
        out.push_str(&format!(
            "{length:<8} {:<4} {shown}{ellipsis}\n",
            tokens.len()
        ));
    }
    out
}

/// Renders Figure 3: per subject and tool, tokens found per length.
pub fn render_fig3(cells: &[Fig3Cell]) -> String {
    let mut out =
        String::from("Figure 3. Tokens generated, grouped by token length (found/total).\n");
    let mut current_subject = "";
    for cell in cells {
        if cell.subject != current_subject {
            current_subject = cell.subject;
            out.push_str(&format!("\n{current_subject}\n"));
            out.push_str(&format!("{:<10}", "Tool"));
            for (l, _, _) in &cell.by_length {
                out.push_str(&format!("{:>9}", format!("len {l}")));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<10}", cell.tool.name()));
        for (_, found, total) in &cell.by_length {
            out.push_str(&format!("{:>9}", format!("{found}/{total}")));
        }
        out.push('\n');
    }
    out
}

/// Renders the Section 5.3 headline aggregates.
pub fn render_headline(rows: &[HeadlineRow]) -> String {
    let mut out = String::from(
        "Section 5.3 headline: token coverage across all subjects.\n\
         (paper, 48h: short AFL 91.5% KLEE 28.7% pFuzzer 81.9%; long AFL 5% KLEE 7.5% pFuzzer 52.5%)\n",
    );
    out.push_str(&format!(
        "{:<10}{:>22}{:>22}\n",
        "Tool", "len <= 3 found", "len > 3 found"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10}{:>15} ({:>5.1}%){:>14} ({:>5.1}%)\n",
            row.tool.name(),
            format!("{}/{}", row.short.0, row.short.1),
            row.short_pct(),
            format!("{}/{}", row.long.0, row.long.1),
            row.long_pct(),
        ));
    }
    out
}

/// Renders the per-cell supervision table: hung and crashed executions
/// the supervisor absorbed, cell retry attempts, and whether the cell
/// completed or was poisoned. Only cells with something to report (a
/// nonzero counter or a poisoned verdict) get a row; a totals line
/// always closes the table, so the counters previously visible only in
/// the `--stats-out` JSON also appear in the human-readable output.
pub fn render_supervision(outcomes: &[CellOutcome]) -> String {
    let mut out = String::from("Supervision. Faults absorbed per matrix cell.\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:>6} {:>7} {:>8} {:>8}  Status\n",
        "Subject", "Tool", "Seed", "Hangs", "Crashes", "Retries"
    ));
    let (mut hangs, mut crashes, mut retries, mut poisoned) = (0u64, 0u64, 0u64, 0u64);
    for co in outcomes {
        match co {
            CellOutcome::Completed(o) => {
                hangs += o.stats.hangs;
                crashes += o.stats.crashes;
                retries += o.stats.retries;
                if o.stats.hangs + o.stats.crashes + o.stats.retries > 0 {
                    out.push_str(&format!(
                        "{:<10} {:<10} {:>6} {:>7} {:>8} {:>8}  completed\n",
                        o.subject,
                        o.tool.name(),
                        o.seed,
                        o.stats.hangs,
                        o.stats.crashes,
                        o.stats.retries,
                    ));
                }
            }
            CellOutcome::Poisoned(p) => {
                poisoned += 1;
                retries += p.attempts.saturating_sub(1);
                out.push_str(&format!(
                    "{:<10} {:<10} {:>6} {:>7} {:>8} {:>8}  POISONED ({})\n",
                    p.subject,
                    p.tool.name(),
                    p.seed,
                    "-",
                    "-",
                    p.attempts.saturating_sub(1),
                    p.reason,
                ));
            }
        }
    }
    out.push_str(&format!(
        "{:<10} {:<10} {:>6} {:>7} {:>8} {:>8}  {} cells, {} poisoned\n",
        "total",
        "",
        "",
        hangs,
        crashes,
        retries,
        outcomes.len(),
        poisoned,
    ));
    out
}

/// Renders Figure 2 as CSV (`subject,afl,klee,pfuzzer`).
pub fn fig2_csv(rows: &[Fig2Row]) -> String {
    let mut out = String::from("subject,afl,klee,pfuzzer\n");
    for row in rows {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2}\n",
            row.subject, row.coverage[0], row.coverage[1], row.coverage[2]
        ));
    }
    out
}

/// Renders Figure 3 as CSV (`subject,tool,length,found,total`).
pub fn fig3_csv(cells: &[Fig3Cell]) -> String {
    let mut out = String::from("subject,tool,length,found,total\n");
    for cell in cells {
        for (length, found, total) in &cell.by_length {
            out.push_str(&format!(
                "{},{},{length},{found},{total}\n",
                cell.subject,
                cell.tool.name()
            ));
        }
    }
    out
}

/// Renders the headline aggregates as CSV
/// (`tool,short_found,short_total,long_found,long_total`).
pub fn headline_csv(rows: &[HeadlineRow]) -> String {
    let mut out = String::from("tool,short_found,short_total,long_found,long_total\n");
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            row.tool.name(),
            row.short.0,
            row.short.1,
            row.long.0,
            row.long.1
        ));
    }
    out
}

/// Renders the token-discovery measurement: executions needed per
/// keyword token (length > 1), per subject and tool. `-` = not found.
pub fn render_discovery(rows: &[DiscoveryRow]) -> String {
    let mut out = String::from(
        "Executions until each multi-character token first appears in a valid input.\n",
    );
    let mut current_subject = "";
    // group rows (subject, token) → per-tool cells
    type Cells = [Option<Option<u64>>; 3];
    let mut tokens_seen: Vec<(&str, &str, usize, Cells)> = Vec::new();
    for row in rows.iter().filter(|r| r.length > 1) {
        let tool_idx = Tool::ALL.iter().position(|t| *t == row.tool).unwrap_or(0);
        match tokens_seen
            .iter_mut()
            .find(|(s, t, _, _)| *s == row.subject && *t == row.token)
        {
            Some((_, _, _, cells)) => cells[tool_idx] = Some(row.found_at),
            None => {
                let mut cells = [None, None, None];
                cells[tool_idx] = Some(row.found_at);
                tokens_seen.push((row.subject, row.token, row.length, cells));
            }
        }
    }
    for (subject, token, _length, cells) in tokens_seen {
        if subject != current_subject {
            current_subject = subject;
            out.push_str(&format!("\n{subject}\n{:<14}", "Token"));
            for tool in Tool::ALL {
                out.push_str(&format!("{:>12}", tool.name()));
            }
            out.push('\n');
        }
        out.push_str(&format!("{token:<14}"));
        for cell in cells {
            let text = match cell {
                Some(Some(execs)) => execs.to_string(),
                _ => "-".to_string(),
            };
            out.push_str(&format!("{text:>12}"));
        }
        out.push('\n');
    }
    out
}

/// Renders the mined-inventory table (`--dict-out`): per subject, how
/// much of the literal multi-character token inventory the miner
/// recovered without a grammar.
pub fn render_mined_inventory(rows: &[MinedInventoryRow]) -> String {
    let mut out = String::from(
        "Mined dictionaries vs the paper's token inventories (literal tokens only).\n",
    );
    out.push_str(&format!(
        "{:<10} {:>8} {:>7} {:>16} {:>16}\n",
        "Subject", "Execs", "Mined", "len >= 2 found", "len >= 4 found"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>8} {:>7} {:>16} {:>16}\n",
            row.subject,
            row.execs,
            row.mined,
            format!("{}/{}", row.multi.0, row.multi.1),
            format!("{}/{}", row.long.0, row.long.1),
        ));
    }
    out
}

/// Renders the dictionary study (`--dict-in`): bare vs dictionary-fed
/// runs at equal budget, scored by short/long token coverage.
pub fn render_dict_study(rows: &[DictStudyRow]) -> String {
    let mut out =
        String::from("Dictionary study: mined tokens fed back to the fuzzers (equal budgets).\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:<6} {:>8} {:>7} {:>14} {:>14}\n",
        "Subject", "Tool", "Dict", "Execs", "Valid", "len <= 3", "len >= 4"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:<10} {:<6} {:>8} {:>7} {:>14} {:>14}\n",
            row.subject,
            row.tool.name(),
            if row.with_dict { "yes" } else { "no" },
            row.execs,
            row.valid_inputs,
            format!("{}/{}", row.short.0, row.short.1),
            format!("{}/{}", row.long.0, row.long.1),
        ));
    }
    out
}

/// Renders the grammar-mining scorecard (`--grammar-out`): per subject,
/// the mined grammar's shape, what the weighted flood produced, and the
/// persisted file digest. Skipped floods print their reason.
pub fn render_grammar_mine(rows: &[GrammarMineRow]) -> String {
    let mut out = String::from(
        "Mined grammars: combined campaign per subject (explore, mine, weighted flood).\n",
    );
    out.push_str(&format!(
        "{:<10} {:>8} {:>6} {:>6} {:>10} {:>7} {:>9}  Digest\n",
        "Subject", "Execs", "Rules", "Alts", "Generated", "Valid", "Promoted"
    ));
    for row in rows {
        match &row.skipped {
            Some(reason) => out.push_str(&format!(
                "{:<10} {:>8} {:>6} {:>6} {:>10} {:>7} {:>9}  SKIPPED ({reason})\n",
                row.subject, row.execs, row.rules, "-", "-", "-", "-",
            )),
            None => out.push_str(&format!(
                "{:<10} {:>8} {:>6} {:>6} {:>10} {:>7} {:>9}  {:016x}\n",
                row.subject,
                row.execs,
                row.rules,
                row.alts,
                row.generated,
                row.generated_valid,
                row.promoted,
                row.digest,
            )),
        }
    }
    out
}

/// Renders the grammar-generation study (`--grammar-in`): pFuzzer alone
/// vs the persisted-grammar flood vs the full combined pipeline, at
/// equal budgets, scored by valid-input branch coverage and Figure-3
/// token coverage.
pub fn render_grammar_study(rows: &[GrammarStudyRow]) -> String {
    let mut out =
        String::from("Grammar study: compiled generation vs pFuzzer alone (equal budgets).\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:>8} {:>10} {:>7} {:>9} {:>14} {:>14}\n",
        "Subject", "Mode", "Execs", "Generated", "Valid", "Branches", "len <= 3", "len >= 4"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:<10} {:>8} {:>10} {:>7} {:>9} {:>14} {:>14}\n",
            row.subject,
            row.mode,
            row.execs,
            row.generated,
            row.valid_inputs,
            row.branches,
            format!("{}/{}", row.short.0, row.short.1),
            format!("{}/{}", row.long.0, row.long.1),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::token_tables;

    #[test]
    fn table1_renders_all_rows() {
        let text = render_table1(&crate::experiments::table1_subjects());
        assert!(text.contains("ini"));
        assert!(text.contains("10920") || text.contains("10,920"));
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn fig2_renders_tools_and_subjects() {
        let rows = vec![Fig2Row {
            subject: "ini",
            coverage: [50.0, 25.0, 75.0],
        }];
        let text = render_fig2(&rows);
        assert!(text.contains("AFL"));
        assert!(text.contains("KLEE"));
        assert!(text.contains("pFuzzer"));
        assert!(text.contains("75.0"));
    }

    #[test]
    fn token_table_renders_lengths() {
        let tables = token_tables();
        let json = render_token_table(&tables[2]);
        assert!(json.contains("cjson"));
        assert!(json.contains("true"));
        assert!(json.contains("false"));
    }

    #[test]
    fn fig3_groups_by_subject() {
        let cells = vec![
            Fig3Cell {
                subject: "cjson",
                tool: Tool::Afl,
                by_length: vec![(1, 5, 8), (2, 1, 1)],
                found: vec!["{"],
            },
            Fig3Cell {
                subject: "cjson",
                tool: Tool::PFuzzer,
                by_length: vec![(1, 8, 8), (2, 1, 1)],
                found: vec!["{"],
            },
        ];
        let text = render_fig3(&cells);
        assert!(text.contains("cjson"));
        assert!(text.contains("5/8"));
        assert!(text.contains("8/8"));
    }

    #[test]
    fn discovery_renders_tokens_and_dashes() {
        let rows = vec![
            DiscoveryRow {
                subject: "cjson",
                tool: Tool::PFuzzer,
                token: "true",
                length: 4,
                found_at: Some(123),
            },
            DiscoveryRow {
                subject: "cjson",
                tool: Tool::Afl,
                token: "true",
                length: 4,
                found_at: None,
            },
        ];
        let text = render_discovery(&rows);
        assert!(text.contains("true"));
        assert!(text.contains("123"));
        assert!(text.contains('-'));
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let fig2 = vec![Fig2Row {
            subject: "ini",
            coverage: [50.0, 25.0, 75.0],
        }];
        let csv = fig2_csv(&fig2);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("subject,"));
        assert!(csv.contains("ini,50.00,25.00,75.00"));

        let fig3 = vec![Fig3Cell {
            subject: "cjson",
            tool: Tool::Afl,
            by_length: vec![(1, 5, 8)],
            found: vec![],
        }];
        let csv = fig3_csv(&fig3);
        assert!(csv.contains("cjson,AFL,1,5,8"));

        let headline = vec![HeadlineRow {
            tool: Tool::Klee,
            short: (3, 9),
            long: (1, 4),
        }];
        let csv = headline_csv(&headline);
        assert!(csv.contains("KLEE,3,9,1,4"));
    }

    #[test]
    fn supervision_table_shows_faults_and_poisoned_cells() {
        use crate::runner::{Outcome, PoisonedCell};
        let stats = pdf_runtime::RunStats {
            hangs: 3,
            crashes: 1,
            retries: 2,
            ..Default::default()
        };
        let completed = CellOutcome::Completed(Outcome {
            tool: Tool::PFuzzer,
            subject: "csv",
            seed: 7,
            valid_inputs: vec![],
            valid_found_at: vec![],
            execs: 100,
            valid_branches: Default::default(),
            all_branches: Default::default(),
            decisions: vec![],
            stats,
        });
        let quiet = CellOutcome::Completed(Outcome {
            tool: Tool::Afl,
            subject: "ini",
            seed: 1,
            valid_inputs: vec![],
            valid_found_at: vec![],
            execs: 100,
            valid_branches: Default::default(),
            all_branches: Default::default(),
            decisions: vec![],
            stats: pdf_runtime::RunStats::default(),
        });
        let poisoned = CellOutcome::Poisoned(PoisonedCell {
            tool: Tool::Klee,
            subject: "mjs",
            seed: 2,
            attempts: 4,
            reason: "crash storm".to_string(),
        });
        let text = render_supervision(&[completed, quiet, poisoned]);
        // fault counters are visible in the human-readable table
        assert!(text.contains("Hangs"), "{text}");
        assert!(text.contains("csv"), "{text}");
        assert!(text.contains("POISONED (crash storm)"), "{text}");
        // the quiet cell contributes no row, only the totals
        assert!(!text.contains("ini"), "{text}");
        let totals = text.lines().last().unwrap();
        assert!(totals.contains('3'), "{totals}");
        assert!(totals.contains("3 cells, 1 poisoned"), "{totals}");
    }

    #[test]
    fn mined_inventory_table_shows_fractions() {
        let rows = vec![MinedInventoryRow {
            subject: "tinyC",
            execs: 5_000,
            mined: 9,
            multi: (3, 4),
            long: (2, 2),
        }];
        let text = render_mined_inventory(&rows);
        assert!(text.contains("tinyC"), "{text}");
        assert!(text.contains("3/4"), "{text}");
        assert!(text.contains("2/2"), "{text}");
    }

    #[test]
    fn dict_study_table_marks_dictionary_runs() {
        let rows = vec![
            DictStudyRow {
                subject: "mjs",
                tool: Tool::PFuzzer,
                with_dict: false,
                execs: 10_000,
                valid_inputs: 12,
                short: (20, 64),
                long: (3, 35),
            },
            DictStudyRow {
                subject: "mjs",
                tool: Tool::PFuzzer,
                with_dict: true,
                execs: 10_000,
                valid_inputs: 15,
                short: (22, 64),
                long: (9, 35),
            },
        ];
        let text = render_dict_study(&rows);
        assert!(text.contains("yes"), "{text}");
        assert!(text.contains("no"), "{text}");
        assert!(text.contains("9/35"), "{text}");
    }

    #[test]
    fn grammar_mine_table_shows_digests_and_skips() {
        let rows = vec![
            GrammarMineRow {
                subject: "cjson",
                execs: 4_000,
                rules: 12,
                alts: 30,
                generated: 512,
                generated_valid: 44,
                promoted: 9,
                digest: 0xabcd,
                skipped: None,
            },
            GrammarMineRow {
                subject: "tinyC",
                execs: 4_000,
                rules: 0,
                alts: 0,
                generated: 0,
                generated_valid: 0,
                promoted: 0,
                digest: 0,
                skipped: Some("no start alternatives".to_string()),
            },
        ];
        let text = render_grammar_mine(&rows);
        assert!(text.contains("000000000000abcd"), "{text}");
        assert!(text.contains("SKIPPED (no start alternatives)"), "{text}");
        assert!(text.contains("Promoted"), "{text}");
    }

    #[test]
    fn grammar_study_table_shows_all_three_modes() {
        let rows = vec![
            GrammarStudyRow {
                subject: "cjson",
                mode: "pFuzzer",
                execs: 1_000,
                generated: 0,
                valid_inputs: 7,
                branches: 40,
                short: (6, 9),
                long: (1, 3),
            },
            GrammarStudyRow {
                subject: "cjson",
                mode: "flood",
                execs: 12,
                generated: 1_000,
                valid_inputs: 12,
                branches: 44,
                short: (7, 9),
                long: (2, 3),
            },
        ];
        let text = render_grammar_study(&rows);
        assert!(text.contains("pFuzzer"), "{text}");
        assert!(text.contains("flood"), "{text}");
        assert!(text.contains("7/9"), "{text}");
        assert!(text.contains("Branches"), "{text}");
    }

    #[test]
    fn headline_renders_percentages() {
        let rows = vec![HeadlineRow {
            tool: Tool::PFuzzer,
            short: (9, 10),
            long: (5, 10),
        }];
        let text = render_headline(&rows);
        assert!(text.contains("90.0%"));
        assert!(text.contains("50.0%"));
    }
}

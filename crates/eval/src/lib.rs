//! The evaluation harness: runs pFuzzer, the AFL baseline and the
//! KLEE baseline on the five subjects and reproduces every table and
//! figure of the paper's Section 5.
//!
//! The experiments are exposed as library functions (used by the
//! binaries in `src/bin`, the Criterion benches in `pdf-bench` and the
//! integration tests) so that a single implementation produces all the
//! reported numbers.
//!
//! Budgets are expressed in *subject executions* rather than wall-clock
//! hours: all three tools pay per execution, so the paper's qualitative
//! comparison is preserved at laptop scale (see DESIGN.md for the
//! substitution argument). Like the paper, each tool runs with several
//! seeds and the best run is reported.
//!
//! # Example
//!
//! ```
//! use pdf_eval::{run_tool, EvalBudget, Tool};
//!
//! let info = pdf_subjects::by_name("cjson").unwrap();
//! let budget = EvalBudget { execs: 2_000, seeds: vec![1], ..EvalBudget::default() };
//! let outcome = run_tool(Tool::PFuzzer, &info, &budget);
//! assert!(outcome.execs <= 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod experiments;
mod progress;
mod render;
mod replay;
mod runner;

pub use coverage::{coverage_universe, relative_coverage};
pub use experiments::{
    dict_vs_baseline, fig1_walkthrough, fig2_coverage, fig3_tokens, fleet_vs_single,
    grammar_vs_baseline, headline_aggregates, mine_subject_dictionary, mine_subject_grammar,
    mine_union_dictionary, run_matrix, run_matrix_jobs, table1_subjects, token_discovery,
    token_tables, DictStudyRow, DiscoveryRow, Fig2Row, Fig3Cell, FleetComparison, FleetSide,
    GrammarMineRow, GrammarStudyRow, HeadlineRow, MinedInventoryRow,
};
pub use progress::ProgressTicker;
pub use render::{
    fig2_csv, fig3_csv, headline_csv, render_dict_study, render_discovery, render_fig2,
    render_fig3, render_grammar_mine, render_grammar_study, render_headline,
    render_mined_inventory, render_supervision, render_table1, render_token_table,
};
pub use replay::{
    cell_config_hash, journal_of, record_cells, replay_journal, CellDiff, ReplayReport,
};
pub use runner::{
    attempt_seed, best_outcome, collapse_matrix, combined_config_for, completed_outcomes,
    fleet_config_for, matrix_cells, matrix_cells_for, outcome_digest, run_cell_supervised,
    run_cells, run_cells_supervised, run_tool, run_tool_seeded, run_tool_seeded_in,
    supervision_summary, CellOutcome, EvalBudget, MatrixCell, Outcome, PoisonedCell,
    SupervisorConfig, Tool, FLEET_SHARDS,
};

/// Parses `--execs N`, `--seeds a,b,c` and `--afl-mult N` from the
/// command line,
/// falling back to the given defaults. Used by the experiment binaries.
pub fn budget_from_args(default_execs: u64) -> EvalBudget {
    let mut budget = EvalBudget {
        execs: default_execs,
        ..EvalBudget::default()
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--execs" if i + 1 < args.len() => {
                if let Ok(n) = args[i + 1].parse() {
                    budget.execs = n;
                }
                i += 2;
            }
            "--afl-mult" if i + 1 < args.len() => {
                if let Ok(n) = args[i + 1].parse() {
                    budget.afl_throughput = n;
                }
                i += 2;
            }
            "--seeds" if i + 1 < args.len() => {
                let seeds: Vec<u64> = args[i + 1]
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                if !seeds.is_empty() {
                    budget.seeds = seeds;
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    budget
}

/// Parses a positive-integer `--flag N` argument from `args`: the flag
/// is optional (absent → `default`), but a present flag must carry a
/// well-formed value of at least 1 — `--jobs 0` or `--shards 0`
/// silently degenerate (a serial "parallel" run, an empty fleet), so
/// they are rejected with a clear error instead of being clamped.
///
/// The shared parsing core behind [`jobs_from_args`],
/// [`shards_from_args`] and [`sync_every_from_args`]; exposed so every
/// binary rejects bad counts with the same wording.
///
/// # Errors
///
/// A human-readable message naming the flag when its value is missing,
/// malformed or zero.
pub fn positive_arg_in(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    for i in 1..args.len() {
        if args[i] == flag {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            let n: u64 = raw
                .parse()
                .map_err(|_| format!("{flag} expects a positive integer, got {raw:?}"))?;
            if n == 0 {
                return Err(format!("{flag} must be at least 1 (got 0)"));
            }
            return Ok(n);
        }
    }
    Ok(default)
}

/// Parses `--jobs N` from the command line: worker threads for the
/// matrix fan-out. Defaults to 1 (serial).
///
/// # Errors
///
/// A clear message when `--jobs` is present with a missing, malformed
/// or zero value (`--jobs 0` would silently run serially).
pub fn jobs_from_args() -> Result<usize, String> {
    let args: Vec<String> = std::env::args().collect();
    positive_arg_in(&args, "--jobs", 1).map(|n| n as usize)
}

/// Parses `--shards N` from the command line: fleet worker shards.
/// Defaults to [`FLEET_SHARDS`].
///
/// # Errors
///
/// A clear message when `--shards` is present with a missing, malformed
/// or zero value (`--shards 0` would be an empty fleet).
pub fn shards_from_args() -> Result<usize, String> {
    let args: Vec<String> = std::env::args().collect();
    positive_arg_in(&args, "--shards", FLEET_SHARDS as u64).map(|n| n as usize)
}

/// Parses `--sync-every N` from the command line: per-shard executions
/// between fleet synchronization epochs. Defaults to `default`.
///
/// # Errors
///
/// A clear message when `--sync-every` is present with a missing,
/// malformed or zero value (a zero interval would never advance).
pub fn sync_every_from_args(default: u64) -> Result<u64, String> {
    let args: Vec<String> = std::env::args().collect();
    positive_arg_in(&args, "--sync-every", default)
}

/// Parses `--exec-mode full|fast|tiered` from `args`: the
/// instrumentation tiering the pFuzzer campaigns run under
/// ([`pdf_core::ExecMode`]). The flag is optional (absent →
/// [`ExecMode::Full`](pdf_core::ExecMode::Full), the byte-identical
/// replay mode), but a present flag must carry one of the three mode
/// names — a typo silently falling back to full would invalidate a
/// throughput experiment. Mode names are matched case-insensitively
/// (`FULL`, `Tiered` and `fast` all work), so scripts that upcase
/// configuration values are not rejected.
///
/// # Errors
///
/// A human-readable message naming the flag and listing the valid
/// modes when its value is missing or unknown.
pub fn exec_mode_in(args: &[String]) -> Result<pdf_core::ExecMode, String> {
    for i in 1..args.len() {
        if args[i] == "--exec-mode" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--exec-mode requires a value".to_string())?;
            return match raw.to_ascii_lowercase().as_str() {
                "full" => Ok(pdf_core::ExecMode::Full),
                "fast" => Ok(pdf_core::ExecMode::Fast),
                "tiered" => Ok(pdf_core::ExecMode::Tiered),
                _ => Err(format!(
                    "--exec-mode expects one of full, fast, tiered (case-insensitive), got {raw:?}"
                )),
            };
        }
    }
    Ok(pdf_core::ExecMode::Full)
}

/// Parses `--exec-mode full|fast|tiered` from the command line — see
/// [`exec_mode_in`]. Used by `evalrunner` and `fleetrunner`.
///
/// # Errors
///
/// A clear message when `--exec-mode` is present with a missing or
/// unknown value.
pub fn exec_mode_from_args() -> Result<pdf_core::ExecMode, String> {
    let args: Vec<String> = std::env::args().collect();
    exec_mode_in(&args)
}

/// Unwraps a CLI parse result, printing the error to stderr and
/// exiting with status 2 on failure — the shared rejection path of
/// `evalrunner`, `replaycheck` and `fleetrunner`.
pub fn require_arg<T>(parsed: Result<T, String>) -> T {
    match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Parses `--stats-out PATH` from the command line: where to write the
/// per-cell [`pdf_runtime::RunStats`] JSON lines.
pub fn stats_out_from_args() -> Option<std::path::PathBuf> {
    path_arg("--stats-out")
}

/// Parses `--record PATH` from the command line: where to write the
/// record/replay [`pdf_runtime::Journal`] of the matrix run.
pub fn record_path_from_args() -> Option<std::path::PathBuf> {
    path_arg("--record")
}

/// Parses `--replay PATH` from the command line: a previously recorded
/// [`pdf_runtime::Journal`] to re-execute and diff instead of running a
/// fresh matrix.
pub fn replay_path_from_args() -> Option<std::path::PathBuf> {
    path_arg("--replay")
}

/// Parses `--max-retries N` from the command line: the supervisor's
/// retry budget for crashed or fuel-hung cells. Defaults to
/// [`SupervisorConfig::default`].
pub fn supervisor_from_args() -> SupervisorConfig {
    let mut sup = SupervisorConfig::default();
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--max-retries" {
            if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                sup.max_retries = n;
            }
        }
    }
    sup
}

/// Parses `--chaos SEED` from the command line: when present, the
/// matrix runs on chaos-wrapped subjects (deterministic injected
/// panics, fuel burns and flaky rejections seeded by `SEED`) instead of
/// the plain evaluation subjects — the supervision stress mode.
pub fn chaos_seed_from_args() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--chaos" {
            return args.get(i + 1).and_then(|s| s.parse().ok());
        }
    }
    None
}

/// Parses `--dict-out PATH` from the command line: when present,
/// `evalrunner` runs one token-mining pFuzzer campaign per subject,
/// prints the mined-inventory scorecard, writes the union dictionary to
/// `PATH` in the `pdf-dict v1` text encoding, and exits.
pub fn dict_out_from_args() -> Option<std::path::PathBuf> {
    path_arg("--dict-out")
}

/// Parses `--dict-in PATH` from the command line: when present,
/// `evalrunner` loads the `pdf-dict v1` dictionary at `PATH`, runs the
/// dictionary study (pFuzzer and AFL, bare vs dictionary-fed, equal
/// budgets) on the keyword-rich subjects, prints the comparison table,
/// and exits.
pub fn dict_in_from_args() -> Option<std::path::PathBuf> {
    path_arg("--dict-in")
}

/// Parses `--grammar-out DIR` from the command line: when present,
/// `evalrunner` runs one combined three-stage campaign per subject
/// (pFuzzer explores, the miner generalizes, the compiled generator
/// floods with evolutionary weighting), prints the mining scorecard,
/// writes each learned grammar + weights to `DIR/<subject>.grammar` in
/// the `pdf-grammar v1` text encoding, and exits.
pub fn grammar_out_from_args() -> Option<std::path::PathBuf> {
    path_arg("--grammar-out")
}

/// Parses `--grammar-in DIR` from the command line: when present,
/// `evalrunner` loads the `pdf-grammar v1` files under `DIR`, runs the
/// grammar-generation study (pFuzzer alone vs persisted-grammar flood
/// vs full combined pipeline, equal budgets) on every subject with a
/// grammar file, prints the comparison table, and exits.
pub fn grammar_in_from_args() -> Option<std::path::PathBuf> {
    path_arg("--grammar-in")
}

/// Parses `--checkpoint-dir PATH` from the command line: the directory
/// `fleetrunner` checkpoints the fleet into at every epoch boundary
/// (and resumes from with `--resume`).
pub fn checkpoint_dir_from_args() -> Option<std::path::PathBuf> {
    path_arg("--checkpoint-dir")
}

/// Parses `--metrics-out PATH` from the command line: where to write
/// the final [`pdf_obs::MetricsSnapshot`] in its `pdf-metrics v1` text
/// encoding after the run completes.
pub fn metrics_out_from_args() -> Option<std::path::PathBuf> {
    path_arg("--metrics-out")
}

/// Parses `--submit ADDR` from the command line: when present,
/// `evalrunner` submits the pFuzzer matrix as fleet campaigns to the
/// `pdf-serve` daemon at `ADDR` over `pdf-wire v1` instead of running
/// it in-process, waits for every campaign to reach a terminal phase
/// and prints one result row per campaign.
pub fn submit_addr_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--submit" {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Parses the `--progress` flag from the command line: when present,
/// the binaries print a live one-line stderr ticker (execs/s, valid
/// inputs, queue depth, poisoned cells) roughly once per second while
/// the matrix runs.
pub fn progress_from_args() -> bool {
    std::env::args().skip(1).any(|a| a == "--progress")
}

/// Parses `--resume-at N` from the command line: when present,
/// `replaycheck` first runs a kill-and-resume self-test pausing every
/// pFuzzer cell after N executions.
pub fn resume_at_from_args() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--resume-at" {
            return args.get(i + 1).and_then(|s| s.parse().ok());
        }
    }
    None
}

/// Writes `registry`'s snapshot to `path` in the `pdf-metrics v1` text
/// encoding, first checking the counter identities that hold by
/// construction (verdict counts sum to executions, histogram counts
/// match). Identity violations and I/O failures are reported on stderr
/// but never abort the run — metrics are observe-only all the way out.
pub fn write_metrics_snapshot(path: &std::path::Path, registry: &pdf_obs::MetricsRegistry) {
    let snapshot = registry.snapshot();
    if let Err(e) = snapshot.check_identities() {
        eprintln!("metrics identity violation: {e}");
    }
    match std::fs::write(path, snapshot.encode()) {
        Ok(()) => eprintln!(
            "wrote metrics snapshot ({} execs) to {}",
            registry.execs.get(),
            path.display()
        ),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn path_arg(flag: &str) -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == flag {
            return args.get(i + 1).map(std::path::PathBuf::from);
        }
    }
    None
}

/// Renders one per-cell outcome as a JSON line: context keys (tool,
/// subject, seed) followed by the campaign's [`pdf_runtime::RunStats`]
/// fields.
pub fn stats_json_line(o: &Outcome) -> String {
    format!(
        "{{\"tool\":\"{}\",\"subject\":\"{}\",\"seed\":{},{}}}",
        o.tool.name(),
        o.subject,
        o.seed,
        o.stats.json_fields()
    )
}

#[cfg(test)]
mod cli_tests {
    use super::{exec_mode_in, positive_arg_in};
    use pdf_core::ExecMode;

    fn args(list: &[&str]) -> Vec<String> {
        std::iter::once("prog")
            .chain(list.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn absent_flag_falls_back_to_default() {
        assert_eq!(positive_arg_in(&args(&[]), "--jobs", 1), Ok(1));
        assert_eq!(
            positive_arg_in(&args(&["--execs", "100"]), "--shards", 4),
            Ok(4)
        );
    }

    #[test]
    fn present_flag_parses_positive_values() {
        assert_eq!(positive_arg_in(&args(&["--jobs", "8"]), "--jobs", 1), Ok(8));
        assert_eq!(
            positive_arg_in(&args(&["--shards", "2", "--jobs", "8"]), "--shards", 4),
            Ok(2)
        );
    }

    #[test]
    fn zero_is_rejected_with_a_clear_error() {
        let err = positive_arg_in(&args(&["--jobs", "0"]), "--jobs", 1).unwrap_err();
        assert!(err.contains("--jobs"), "error must name the flag: {err}");
        assert!(err.contains("at least 1"), "error must explain: {err}");
        let err = positive_arg_in(&args(&["--shards", "0"]), "--shards", 4).unwrap_err();
        assert!(err.contains("--shards"));
    }

    #[test]
    fn malformed_and_missing_values_are_rejected() {
        assert!(positive_arg_in(&args(&["--jobs", "many"]), "--jobs", 1).is_err());
        assert!(positive_arg_in(&args(&["--jobs", "-3"]), "--jobs", 1).is_err());
        assert!(positive_arg_in(&args(&["--jobs"]), "--jobs", 1).is_err());
    }

    #[test]
    fn exec_mode_defaults_to_full_and_parses_all_three() {
        assert_eq!(exec_mode_in(&args(&[])), Ok(ExecMode::Full));
        assert_eq!(exec_mode_in(&args(&["--execs", "100"])), Ok(ExecMode::Full));
        assert_eq!(
            exec_mode_in(&args(&["--exec-mode", "full"])),
            Ok(ExecMode::Full)
        );
        assert_eq!(
            exec_mode_in(&args(&["--exec-mode", "fast"])),
            Ok(ExecMode::Fast)
        );
        assert_eq!(
            exec_mode_in(&args(&["--jobs", "2", "--exec-mode", "tiered"])),
            Ok(ExecMode::Tiered)
        );
    }

    #[test]
    fn exec_mode_rejects_unknown_and_missing_values() {
        let err = exec_mode_in(&args(&["--exec-mode", "turbo"])).unwrap_err();
        assert!(
            err.contains("--exec-mode"),
            "error must name the flag: {err}"
        );
        assert!(err.contains("turbo"), "error must quote the value: {err}");
        for mode in ["full", "fast", "tiered"] {
            assert!(err.contains(mode), "error must list {mode}: {err}");
        }
        assert!(exec_mode_in(&args(&["--exec-mode"])).is_err());
    }

    #[test]
    fn exec_mode_is_case_insensitive() {
        assert_eq!(
            exec_mode_in(&args(&["--exec-mode", "FULL"])),
            Ok(ExecMode::Full)
        );
        assert_eq!(
            exec_mode_in(&args(&["--exec-mode", "Fast"])),
            Ok(ExecMode::Fast)
        );
        assert_eq!(
            exec_mode_in(&args(&["--exec-mode", "TiErEd"])),
            Ok(ExecMode::Tiered)
        );
    }
}

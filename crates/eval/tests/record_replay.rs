//! Property tests for the record/replay pipeline: arbitrary
//! (subject, tool, seed, budget) cells record a journal that replays to
//! byte-identical digests, surviving the text encoding in between.

use proptest::prelude::*;

use pdf_eval::{record_cells, replay_journal, MatrixCell, Tool};
use pdf_runtime::Journal;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One arbitrary cell: record, round-trip the journal through its
    /// text form, replay, and require a clean diff.
    #[test]
    fn any_cell_records_then_replays_identically(
        subject_idx in 0usize..5,
        tool_idx in 0usize..3,
        seed in 1u64..10_000,
        execs in 50u64..400,
    ) {
        let info = pdf_subjects::evaluation_subjects()[subject_idx];
        let tool = Tool::ALL[tool_idx];
        let cell = MatrixCell { info, tool, execs, seed, exec_mode: pdf_core::ExecMode::Full };
        let (outcomes, journal) = record_cells(&[cell], 1);
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(journal.cells.len(), 1);
        let decoded = Journal::decode(&journal.encode()).expect("journal decodes");
        prop_assert_eq!(&decoded, &journal);
        let report = replay_journal(&decoded, 1);
        prop_assert!(
            report.is_clean(),
            "cell {:?}/{}/{} diverged:\n{}",
            tool,
            info.name,
            seed,
            report
                .diffs
                .iter()
                .map(|d| d.describe())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Several cells in one journal replay together, in parallel.
    #[test]
    fn multi_cell_journals_replay_in_parallel(
        seed in 1u64..10_000,
        execs in 50u64..250,
    ) {
        let infos = pdf_subjects::evaluation_subjects();
        let cells: Vec<MatrixCell> = Tool::ALL
            .into_iter()
            .enumerate()
            .map(|(i, tool)| MatrixCell {
                info: infos[i % infos.len()],
                tool,
                execs,
                seed: seed + i as u64,
                exec_mode: pdf_core::ExecMode::Full,
            })
            .collect();
        let (_, journal) = record_cells(&cells, 2);
        let report = replay_journal(&journal, 3);
        prop_assert!(
            report.is_clean(),
            "{}",
            report
                .diffs
                .iter()
                .map(|d| d.describe())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

//! The token-discovery smoke of the CI `token-discovery` job: an
//! end-to-end run of the pipeline — mine a dictionary from an mjs
//! campaign, feed it back to the driver, and check the Figure-3
//! long-token claim: at equal execution budgets, the dictionary-fed
//! driver recovers strictly more length-≥4 inventory tokens than the
//! single-character substitution baseline.
//!
//! The budgets and seeds are calibrated (see EXPERIMENTS.md "Token
//! discovery"): campaigns are deterministic, so this is a fixed
//! regression gate, not a flaky statistical test.

use pdf_eval::{dict_vs_baseline, mine_union_dictionary};

#[test]
fn mined_dictionary_beats_single_char_baseline_on_mjs_long_tokens() {
    let info = pdf_subjects::by_name("mjs").unwrap();

    // Mine: one token-mining campaign per subject, merged into the
    // union dictionary `evalrunner --dict-out` would write.
    let (dict, rows) = mine_union_dictionary(8_000, 1);
    assert!(!dict.is_empty(), "mining must surface tokens");
    let mjs = rows.iter().find(|r| r.subject == "mjs").unwrap();
    assert!(
        mjs.long.0 >= 20,
        "the mined mjs dictionary itself recovers most of the Table-4 \
         length-≥4 inventory, got {}/{}",
        mjs.long.0,
        mjs.long.1
    );

    // Feed: bare vs dictionary-fed pFuzzer at equal budgets, summed
    // over two seeds so one lucky baseline seed cannot flip the gate.
    let (mut baseline, mut with_dict) = (0, 0);
    for seed in [1, 2] {
        let rows = dict_vs_baseline(&info, &dict, 20_000, seed);
        let bare = &rows[0];
        let fed = &rows[1];
        assert!(!bare.with_dict && fed.with_dict);
        assert!(bare.execs <= 20_000 && fed.execs <= 20_000);
        baseline += bare.long.0;
        with_dict += fed.long.0;
    }
    assert!(
        with_dict > baseline,
        "dictionary-fed driver must recover strictly more length-≥4 \
         tokens: {with_dict} vs {baseline}"
    );
}

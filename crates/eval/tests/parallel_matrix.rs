//! Property test for the parallel matrix fan-out: for any small budget
//! and any worker count, `run_cells` must return exactly what the
//! serial run returns (wall-clock stats excluded).

use proptest::prelude::*;

use pdf_eval::{completed_outcomes, matrix_cells, run_cells, EvalBudget};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn jobs_never_change_the_outcome(
        seed_a in 1u64..50,
        seed_b in 50u64..100,
        execs in 150u64..350,
        jobs in 2usize..6,
    ) {
        let budget = EvalBudget {
            execs,
            seeds: vec![seed_a, seed_b],
            afl_throughput: 1,
        };
        let cells = matrix_cells(&budget);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, jobs);
        prop_assert_eq!(serial.len(), parallel.len());
        prop_assert!(serial.iter().all(|c| !c.is_poisoned()));
        let serial = completed_outcomes(serial);
        let parallel = completed_outcomes(parallel);
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.tool, p.tool);
            prop_assert_eq!(&s.subject, &p.subject);
            prop_assert_eq!(s.seed, p.seed);
            prop_assert_eq!(&s.valid_inputs, &p.valid_inputs);
            prop_assert_eq!(&s.valid_found_at, &p.valid_found_at);
            prop_assert_eq!(s.execs, p.execs);
            prop_assert_eq!(&s.valid_branches, &p.valid_branches);
            prop_assert_eq!(&s.all_branches, &p.all_branches);
            // deterministic stats counters agree; wall time does not
            prop_assert_eq!(s.stats.executions, p.stats.executions);
            prop_assert_eq!(s.stats.events, p.stats.events);
            prop_assert_eq!(s.stats.valid_inputs, p.stats.valid_inputs);
            prop_assert_eq!(s.stats.queue_depth, p.stats.queue_depth);
        }
    }
}

//! The chaos-supervision contract: a full evaluation matrix over
//! fault-injecting subjects must run to completion in-process — every
//! cell either completes (with its injected hangs and crashes counted)
//! or is recorded as poisoned. Nothing may abort the harness.

use pdf_eval::{
    matrix_cells_for, outcome_digest, run_cells_supervised, supervision_summary, CellOutcome,
    EvalBudget, SupervisorConfig,
};
use pdf_subjects::chaos::{chaos_evaluation_subjects, ChaosConfig};

#[test]
fn chaos_matrix_completes_without_aborting() {
    let cfg = ChaosConfig::stormy(42);
    let subjects = chaos_evaluation_subjects(cfg);
    assert_eq!(subjects.len(), 5);
    let budget = EvalBudget {
        execs: 300,
        seeds: vec![1],
        afl_throughput: 1,
    };
    let cells = matrix_cells_for(&subjects, &budget);
    assert_eq!(cells.len(), 15);
    let sup = SupervisorConfig { max_retries: 1 };

    let outcomes = run_cells_supervised(&cells, 3, &sup);
    assert_eq!(outcomes.len(), cells.len(), "every cell produced a row");

    let completed: Vec<_> = outcomes.iter().filter_map(CellOutcome::outcome).collect();
    assert!(
        !completed.is_empty(),
        "stormy chaos must not poison the whole matrix"
    );
    let crashes: u64 = completed.iter().map(|o| o.stats.crashes).sum();
    let hangs: u64 = completed.iter().map(|o| o.stats.hangs).sum();
    assert!(crashes > 0, "injected panics were observed and counted");
    assert!(hangs > 0, "injected fuel burns were observed and counted");

    let summary = supervision_summary(&outcomes);
    assert!(summary.contains("15 cells"), "{summary}");

    // The supervised chaos matrix is still deterministic: running it
    // again (serially) reproduces the same outcome classes and, for
    // completed cells, identical digests.
    let again = run_cells_supervised(&cells, 1, &sup);
    assert_eq!(again.len(), outcomes.len());
    for (a, b) in outcomes.iter().zip(&again) {
        match (a, b) {
            (CellOutcome::Completed(x), CellOutcome::Completed(y)) => {
                assert_eq!(outcome_digest(x), outcome_digest(y));
                assert_eq!(x.stats.hangs, y.stats.hangs);
                assert_eq!(x.stats.crashes, y.stats.crashes);
                assert_eq!(x.stats.retries, y.stats.retries);
            }
            (CellOutcome::Poisoned(x), CellOutcome::Poisoned(y)) => {
                assert_eq!(x.attempts, y.attempts);
                assert_eq!(x.reason, y.reason);
            }
            _ => panic!("supervision outcome class diverged between runs"),
        }
    }
}

//! The observability contract, end to end: metrics recorded during a
//! real matrix campaign satisfy the counter identities, survive the
//! `pdf-metrics v1` text codec, and — the load-bearing guarantee —
//! never change what the campaign computes. Instrumentation reads
//! campaign state and writes only to its own atomics; it draws no
//! randomness and never touches the drivers' byte chokepoints, so a
//! recorded journal replays byte-identically whether or not a registry
//! is installed.

use std::sync::Arc;

use pdf_eval::{matrix_cells, record_cells, replay_journal, EvalBudget, MatrixCell};
use pdf_obs::MetricsRegistry;

fn csv_cells() -> Vec<MatrixCell> {
    let budget = EvalBudget {
        execs: 400,
        seeds: vec![1, 2],
        afl_throughput: 1,
    };
    matrix_cells(&budget)
        .into_iter()
        .filter(|c| c.info.name == "csv")
        .collect()
}

/// accepts + rejects + hangs + crashes == execs, and both per-exec
/// histograms saw every execution — on a real campaign, not a toy
/// registry.
#[test]
fn counter_identities_hold_on_a_csv_campaign() {
    let registry = Arc::new(MetricsRegistry::new());
    let _scope = pdf_obs::install(Arc::clone(&registry));
    let cells = csv_cells();
    let (outcomes, _) = record_cells(&cells, 1);
    assert_eq!(outcomes.len(), cells.len());

    let execs = registry.execs.get();
    assert!(execs > 0, "campaign must have executed the subject");
    let verdicts = registry.accepts.get()
        + registry.rejects.get()
        + registry.hangs.get()
        + registry.crashes.get();
    assert_eq!(
        verdicts, execs,
        "every exec classifies to exactly one verdict"
    );
    assert_eq!(registry.exec_latency_ns.count(), execs);
    assert_eq!(registry.input_len.count(), execs);

    let snapshot = registry.snapshot();
    snapshot.check_identities().expect("identities hold");
    // ... and the identities survive the text codec round-trip.
    let decoded = pdf_obs::MetricsSnapshot::decode(&snapshot.encode()).expect("decodes");
    assert_eq!(snapshot, decoded);
    decoded
        .check_identities()
        .expect("identities hold after round-trip");
}

/// The campaign-level spans all fired: the per-phase breakdown is
/// non-empty for every phase the driver actually runs.
#[test]
fn phase_spans_cover_the_driver_loop() {
    let registry = Arc::new(MetricsRegistry::new());
    let _scope = pdf_obs::install(Arc::clone(&registry));
    let cells: Vec<MatrixCell> = csv_cells()
        .into_iter()
        .filter(|c| c.tool == pdf_eval::Tool::PFuzzer)
        .collect();
    let _ = pdf_eval::run_cells(&cells, 1);
    for phase in [
        "driver.pick",
        "driver.exec",
        "driver.classify",
        "driver.enqueue",
    ] {
        let stat = registry.span_stat(phase).unwrap_or_default();
        assert!(stat.count > 0, "span {phase} never fired");
    }
    // eval.cell wraps each matrix cell exactly once per attempt
    let cell_span = registry.span_stat("eval.cell").unwrap_or_default();
    assert!(cell_span.count >= cells.len() as u64);
}

/// The determinism contract: a journal recorded *without* any metrics
/// registry replays byte-identically *with* one installed (and the
/// other way round), and the two recordings are themselves identical.
#[test]
fn replay_digest_is_unchanged_by_metrics() {
    let cells = csv_cells();

    // record with no registry installed (pdf_obs::record is a no-op)
    assert!(
        pdf_obs::current().is_none(),
        "test must start uninstrumented"
    );
    let (_, journal_plain) = record_cells(&cells, 1);

    // record again with a registry installed
    let registry = Arc::new(MetricsRegistry::new());
    let scope = pdf_obs::install(Arc::clone(&registry));
    let (_, journal_metered) = record_cells(&cells, 1);

    assert_eq!(
        journal_plain.encode(),
        journal_metered.encode(),
        "metrics changed the recorded journal"
    );

    // replay the uninstrumented recording while metrics are on
    let report = replay_journal(&journal_plain, 2);
    assert!(report.is_clean(), "metered replay diverged");
    assert!(registry.execs.get() > 0, "replay itself was metered");
    drop(scope);

    // and replay the metered recording with metrics off again
    let report = replay_journal(&journal_metered, 1);
    assert!(report.is_clean(), "unmetered replay diverged");
}

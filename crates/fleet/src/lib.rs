//! `pdf-fleet` — sharded cooperative fuzzing campaigns.
//!
//! One campaign, N workers: a [`Fleet`] runs N independent
//! [`pdf_core::Fuzzer`] shards (shard `i` seeded `base_seed + i`) in
//! lockstep *synchronization epochs*. Between epochs a deterministic
//! coordinator merges shard coverage and promotes each newly closed
//! valid input — deduplicated by its journal digest — into every other
//! shard's candidate queue via the [`pdf_core::SyncPoint`] hook. The
//! cooperative discovery is the point: a keyword one shard closes
//! becomes splice material for all of them, so the fleet reaches the
//! paper's Figure-3 token set in fewer *total* executions than N
//! independent runs (EXPERIMENTS.md, "Fleet sharding").
//!
//! The fleet preserves the workspace's determinism contract end to
//! end — see [`Fleet`] for the exact statement — and checkpoints as a
//! directory of per-shard `pdf-checkpoint v1` files plus a
//! [`pdf-fleet v1` manifest](FleetManifest).
//!
//! # Example
//!
//! ```
//! use pdf_core::DriverConfig;
//! use pdf_fleet::{Fleet, FleetConfig};
//!
//! let base = DriverConfig { seed: 1, max_execs: 500, ..DriverConfig::default() };
//! let report = Fleet::new(pdf_subjects::dyck::subject(), FleetConfig::new(2, 250, base))
//!     .unwrap()
//!     .run();
//! assert_eq!(report.total_execs, report.shards.iter().map(|r| r.execs).sum::<u64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod manifest;

pub use campaign::{merge_coverage, Fleet, FleetConfig, FleetProgress, FleetReport};
pub use manifest::{shard_file, FleetError, FleetManifest, MANIFEST_FILE};

//! The `pdf-fleet v1` manifest codec plus the crate's error type.
//!
//! A fleet checkpoint is a directory: one `pdf-checkpoint v1` file per
//! shard (`shard-NN.ck`, written by the existing
//! [`Fuzzer::checkpoint_to`](pdf_core::Fuzzer::checkpoint_to)) plus one
//! `fleet.manifest` file holding the coordinator's own state — the
//! epoch counter, how many of each shard's valid inputs the coordinator
//! has already seen, and the sorted digest set of every input promoted
//! so far. Together they reconstruct the fleet exactly: resuming and
//! running to completion yields the same
//! [`FleetReport::digest`](crate::FleetReport::digest) as an
//! uninterrupted run.
//!
//! The text format follows the workspace's line-codec conventions
//! (`pdf-journal` / `pdf-checkpoint` / `pdf-metrics`): a `pdf-fleet v1`
//! header, one `meta` record, then one `seen` record per shard and one
//! `prom` record per promoted digest. Unordered data (the promoted set)
//! is emitted sorted, so encoding is canonical.

use std::fmt;

use pdf_core::CheckpointError;

/// Name of the manifest file inside a fleet checkpoint directory.
pub const MANIFEST_FILE: &str = "fleet.manifest";

const HEADER: &str = "pdf-fleet v1";

/// The file name of shard `i`'s checkpoint inside a fleet checkpoint
/// directory.
pub fn shard_file(shard: usize) -> String {
    format!("shard-{shard:02}.ck")
}

/// Why a fleet could not be configured, checkpointed or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The fleet configuration is invalid (zero shards, zero sync
    /// interval, or a replay stream count that does not match the
    /// shard count).
    Config(String),
    /// The manifest text does not start with the `pdf-fleet v1` header.
    Header,
    /// A manifest line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The configuration, subject or shard layout drifted since the
    /// checkpoint was taken.
    Drift(String),
    /// A per-shard checkpoint failed to decode or resume.
    Shard(CheckpointError),
    /// Reading or writing a checkpoint file failed.
    Io(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(what) => write!(f, "fleet config: {what}"),
            FleetError::Header => write!(f, "missing `{HEADER}` header"),
            FleetError::Parse { line, reason } => {
                write!(f, "fleet manifest line {line}: {reason}")
            }
            FleetError::Drift(what) => write!(f, "fleet drift: {what}"),
            FleetError::Shard(e) => write!(f, "fleet shard: {e}"),
            FleetError::Io(e) => write!(f, "fleet io: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl FleetError {
    /// Classifies this error for checkpoint-fallback decisions, the
    /// fleet analog of [`CheckpointError::class`]
    /// ([`pdf_core::ErrorClass`] semantics): `Corrupt` means an older
    /// checkpoint generation is still good and the damaged one should
    /// be quarantined; `Drift` means no generation can help; `Io`
    /// leaves the call to the consumer's judgement.
    pub fn class(&self) -> pdf_core::ErrorClass {
        use pdf_core::ErrorClass;
        match self {
            FleetError::Header | FleetError::Parse { .. } => ErrorClass::Corrupt,
            FleetError::Drift(_) | FleetError::Config(_) => ErrorClass::Drift,
            FleetError::Shard(e) => e.class(),
            FleetError::Io(_) => ErrorClass::Io,
        }
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> Self {
        FleetError::Shard(e)
    }
}

/// The coordinator's serialized state: everything a resumed fleet needs
/// beyond the per-shard checkpoints.
///
/// ```
/// use pdf_fleet::FleetManifest;
///
/// let m = FleetManifest {
///     subject: "dyck".to_string(),
///     config_hash: 0xabcd,
///     base_seed: 7,
///     shards: 2,
///     sync_every: 500,
///     epoch: 3,
///     promotions: 2,
///     injections: 2,
///     seen_valid: vec![1, 1],
///     promoted: vec![0x1111, 0x2222],
/// };
/// let back = FleetManifest::decode(&m.encode()).unwrap();
/// assert_eq!(back, m);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetManifest {
    /// Subject name the fleet runs against.
    pub subject: String,
    /// Shared [`DriverConfig::config_hash`](pdf_core::DriverConfig::config_hash)
    /// of the base configuration (seed-independent, so one hash covers
    /// every shard).
    pub config_hash: u64,
    /// The fleet's base seed (shard `i` runs with `base_seed + i`).
    pub base_seed: u64,
    /// Number of worker shards.
    pub shards: u64,
    /// Per-shard executions between synchronization epochs.
    pub sync_every: u64,
    /// Synchronization epochs completed.
    pub epoch: u64,
    /// Distinct valid inputs promoted so far.
    pub promotions: u64,
    /// Queue injections performed so far.
    pub injections: u64,
    /// Per shard: how many of its valid inputs the coordinator has
    /// already examined (indexed by shard id).
    pub seen_valid: Vec<u64>,
    /// Digests of every promoted input, sorted ascending.
    pub promoted: Vec<u64>,
}

impl FleetManifest {
    /// Renders the manifest as `pdf-fleet v1` text.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(
            out,
            "meta subject={} cfg={:016x} seed={} shards={} sync={} epoch={} \
             promotions={} injections={}",
            self.subject,
            self.config_hash,
            self.base_seed,
            self.shards,
            self.sync_every,
            self.epoch,
            self.promotions,
            self.injections,
        );
        for (shard, n) in self.seen_valid.iter().enumerate() {
            let _ = writeln!(out, "seen shard={shard} valid={n}");
        }
        for dg in &self.promoted {
            let _ = writeln!(out, "prom digest={dg:016x}");
        }
        out
    }

    /// Parses `pdf-fleet v1` text.
    ///
    /// # Errors
    ///
    /// [`FleetError::Header`] on a missing header, [`FleetError::Parse`]
    /// on any malformed line (including `seen` records out of shard
    /// order or an unsorted promoted set — encoding is canonical).
    pub fn decode(text: &str) -> Result<FleetManifest, FleetError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == HEADER => {}
            _ => return Err(FleetError::Header),
        }
        let mut m = FleetManifest::default();
        let mut saw_meta = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| FleetError::Parse {
                line: lineno,
                reason: reason.to_string(),
            };
            let mut toks = line.split_whitespace();
            let tag = toks.next().ok_or_else(|| err("empty record"))?;
            let mut get = |key: &str| -> Result<&str, FleetError> {
                toks.next()
                    .and_then(|tok| tok.strip_prefix(key))
                    .and_then(|tok| tok.strip_prefix('='))
                    .ok_or_else(|| err(&format!("expected {key}=...")))
            };
            match tag {
                "meta" => {
                    m.subject = get("subject")?.to_string();
                    m.config_hash =
                        u64::from_str_radix(get("cfg")?, 16).map_err(|_| err("bad cfg hash"))?;
                    m.base_seed = get("seed")?.parse().map_err(|_| err("bad seed"))?;
                    m.shards = get("shards")?.parse().map_err(|_| err("bad shards"))?;
                    m.sync_every = get("sync")?.parse().map_err(|_| err("bad sync"))?;
                    m.epoch = get("epoch")?.parse().map_err(|_| err("bad epoch"))?;
                    m.promotions = get("promotions")?
                        .parse()
                        .map_err(|_| err("bad promotions"))?;
                    m.injections = get("injections")?
                        .parse()
                        .map_err(|_| err("bad injections"))?;
                    saw_meta = true;
                }
                "seen" => {
                    let shard: u64 = get("shard")?.parse().map_err(|_| err("bad shard"))?;
                    if shard != m.seen_valid.len() as u64 {
                        return Err(err("seen records out of shard order"));
                    }
                    m.seen_valid
                        .push(get("valid")?.parse().map_err(|_| err("bad valid"))?);
                }
                "prom" => {
                    let dg =
                        u64::from_str_radix(get("digest")?, 16).map_err(|_| err("bad digest"))?;
                    if m.promoted.last().is_some_and(|&last| last >= dg) {
                        return Err(err("promoted digests not strictly ascending"));
                    }
                    m.promoted.push(dg);
                }
                other => return Err(err(&format!("unknown record tag {other:?}"))),
            }
        }
        if !saw_meta {
            return Err(FleetError::Parse {
                line: 0,
                reason: "missing meta record".to_string(),
            });
        }
        if m.seen_valid.len() as u64 != m.shards {
            return Err(FleetError::Parse {
                line: 0,
                reason: format!(
                    "meta says {} shards but {} seen records",
                    m.shards,
                    m.seen_valid.len()
                ),
            });
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetManifest {
        FleetManifest {
            subject: "arith".to_string(),
            config_hash: 0xdead_beef,
            base_seed: 42,
            shards: 3,
            sync_every: 250,
            epoch: 7,
            promotions: 2,
            injections: 4,
            seen_valid: vec![5, 0, 2],
            promoted: vec![0x0101, 0xff00],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let text = m.encode();
        assert_eq!(FleetManifest::decode(&text).unwrap(), m);
        // canonical: re-encoding the decoded value is byte-identical
        assert_eq!(FleetManifest::decode(&text).unwrap().encode(), text);
    }

    #[test]
    fn rejects_missing_header_and_garbage() {
        assert_eq!(FleetManifest::decode(""), Err(FleetError::Header));
        assert_eq!(
            FleetManifest::decode("pdf-checkpoint v1\n"),
            Err(FleetError::Header)
        );
        let bad = "pdf-fleet v1\nwhat is=this\n";
        assert!(matches!(
            FleetManifest::decode(bad),
            Err(FleetError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_shard_count_mismatch_and_disorder() {
        let mut m = sample();
        m.seen_valid.pop();
        assert!(matches!(
            FleetManifest::decode(&m.encode()),
            Err(FleetError::Parse { .. })
        ));
        let mut m = sample();
        m.promoted = vec![0xff00, 0x0101]; // unsorted
        assert!(matches!(
            FleetManifest::decode(&m.encode()),
            Err(FleetError::Parse { .. })
        ));
    }
}

//! The fleet coordinator: N worker shards, one campaign.
//!
//! A [`Fleet`] runs one fuzzing campaign as N independent
//! [`Fuzzer`] workers (shard `i` seeded `base_seed + i`) advancing in
//! lockstep *synchronization epochs*. Each epoch every shard runs
//! `sync_every` more executions under a [`CampaignBudget`] pause point,
//! then the coordinator performs a deterministic sync:
//!
//! 1. it walks the shards in index order and collects each shard's
//!    newly closed valid inputs,
//! 2. deduplicates them against everything promoted so far (by the
//!    journal [`digest_bytes`] digest),
//! 3. injects each fresh input into every *other* shard's candidate
//!    queue through the [`SyncPoint`](pdf_core::SyncPoint) hook.
//!
//! # Determinism contract
//!
//! Everything the coordinator does is RNG-free and runs in shard index
//! order, and the per-shard legs share no mutable state, so the epoch
//! interleaving cannot leak into results: a fleet with fixed
//! `(base seed, shards, sync_every)` reproduces byte-identical
//! per-shard decision streams, reports and the merged coverage digest
//! across runs — parallel or serial, interrupted by
//! [checkpoint/resume](Fleet::checkpoint_to) or not. Merged coverage is
//! the plain [`BranchSet`] union of the shards, which is commutative,
//! associative and idempotent (proven by proptest), so it is also
//! independent of merge order.

use std::collections::BTreeSet;
use std::path::Path;
use std::time::Instant;

use pdf_core::{CampaignBudget, DriverConfig, ExecMode, FuzzReport, Fuzzer, StopReason};
use pdf_runtime::{digest_bytes, BranchSet, Digest, ExecArena, Subject};

use crate::manifest::{shard_file, FleetError, FleetManifest, MANIFEST_FILE};

/// Configuration of a sharded campaign.
///
/// `base` is the per-shard driver configuration: shard `i` runs with
/// `seed = base.seed + i` and everything else identical, so all shards
/// share one [`config_hash`](DriverConfig::config_hash) (the hash is
/// seed-independent) and `base.max_execs` is the *per-shard* execution
/// budget.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker shards (must be at least 1).
    pub shards: usize,
    /// Per-shard executions between synchronization epochs (must be at
    /// least 1).
    pub sync_every: u64,
    /// The per-shard driver configuration (see type docs for how the
    /// seed and budget are interpreted).
    pub base: DriverConfig,
    /// Run the per-epoch worker legs on scoped threads. Purely a
    /// throughput knob: serial and parallel fleets are digest-identical.
    pub parallel: bool,
}

impl FleetConfig {
    /// A parallel fleet of `shards` workers syncing every `sync_every`
    /// per-shard executions.
    pub fn new(shards: usize, sync_every: u64, base: DriverConfig) -> Self {
        FleetConfig {
            shards,
            sync_every,
            base,
            parallel: true,
        }
    }

    /// Checks the configuration invariants.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when `shards` or `sync_every` is zero —
    /// both silently degenerate (an empty fleet, or a sync loop that
    /// never advances) rather than fail later, so they are rejected
    /// here.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.shards == 0 {
            return Err(FleetError::Config(
                "shards must be at least 1 (got 0)".to_string(),
            ));
        }
        if self.sync_every == 0 {
            return Err(FleetError::Config(
                "sync-every must be at least 1 (got 0)".to_string(),
            ));
        }
        Ok(())
    }

    /// The driver configuration shard `shard` runs with: the base
    /// configuration with the seed offset by the shard index.
    pub fn shard_config(&self, shard: usize) -> DriverConfig {
        DriverConfig {
            seed: self.base.seed.wrapping_add(shard as u64),
            ..self.base.clone()
        }
    }
}

/// The outcome of a sharded campaign: per-shard reports plus the
/// fleet-level merge.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One [`FuzzReport`] per shard, indexed by shard id.
    pub shards: Vec<FuzzReport>,
    /// Every distinct valid input any shard found, deduplicated by
    /// digest and sorted by discovery cost (then bytes) — see
    /// `valid_found_at` for the cost definition.
    pub valid_inputs: Vec<Vec<u8>>,
    /// For each fleet valid input, an upper bound on the *total* fleet
    /// executions spent when it was found: the finding shard's
    /// discovery count times the shard count (shards advance in
    /// lockstep epochs, so no shard is more than one epoch ahead).
    /// Parallel to `valid_inputs`; deduplicated inputs keep the
    /// cheapest discovery.
    pub valid_found_at: Vec<u64>,
    /// Union of every shard's valid-input coverage (`vBr`).
    pub valid_branches: BranchSet,
    /// Union of every shard's any-run coverage.
    pub all_branches: BranchSet,
    /// Total subject executions across all shards.
    pub total_execs: u64,
    /// Synchronization epochs the campaign ran.
    pub epochs: u64,
    /// Distinct valid inputs the coordinator promoted.
    pub promotions: u64,
    /// Queue injections the coordinator performed.
    pub injections: u64,
}

impl FleetReport {
    /// FNV-1a digest over every deterministic field: the shard count,
    /// each shard's [`FuzzReport::digest`], the merged valid inputs and
    /// coverage, and the coordinator counters. Two fleet runs with the
    /// same `(subject, base seed, shards, sync_every)` produce the same
    /// digest — the fleet determinism contract.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.shards.len() as u64);
        for r in &self.shards {
            d.write_u64(r.digest());
        }
        d.write_u64(self.valid_inputs.len() as u64);
        for (input, &at) in self.valid_inputs.iter().zip(&self.valid_found_at) {
            d.write_u64(at);
            d.write_bytes(input);
        }
        d.write_u64(self.coverage_digest());
        d.write_u64(self.total_execs);
        d.write_u64(self.epochs);
        d.write_u64(self.promotions);
        d.write_u64(self.injections);
        d.finish()
    }

    /// FNV-1a digest of the merged coverage alone (both branch sets).
    /// Because the merge is a set union, this is invariant under shard
    /// order and epoch interleaving — the quantity the CI
    /// `fleet-determinism` job compares across runs.
    pub fn coverage_digest(&self) -> u64 {
        let mut d = Digest::new();
        for set in [&self.valid_branches, &self.all_branches] {
            d.write_u64(set.len() as u64);
            for b in set.iter() {
                d.write_u64(b.site.0);
                d.write_u8(b.outcome as u8);
            }
        }
        d.finish()
    }
}

/// A read-only progress summary of a running fleet, cheap enough to
/// take between every epoch — what the `pdf-serve` daemon streams to
/// `watch` subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetProgress {
    /// Synchronization epochs completed so far.
    pub epoch: u64,
    /// Total subject executions across all shards so far.
    pub total_execs: u64,
    /// Distinct valid inputs discovered so far (see
    /// [`Fleet::progress`] for the one-epoch lag caveat).
    pub valid_inputs: u64,
    /// Whether every shard has finished its budget.
    pub complete: bool,
}

/// Unions any number of [`BranchSet`]s — the fleet's coverage merge,
/// exposed for the `sync_overhead` bench and anyone composing coverage
/// outside a [`Fleet`]. Commutative, associative and idempotent (it is
/// a set union), so the result is independent of iteration order.
pub fn merge_coverage<'a>(sets: impl IntoIterator<Item = &'a BranchSet>) -> BranchSet {
    let mut merged = BranchSet::new();
    for set in sets {
        merged.union_with(set);
    }
    merged
}

/// A sharded cooperative campaign: N workers, one coordinator.
///
/// ```
/// use pdf_core::DriverConfig;
/// use pdf_fleet::{Fleet, FleetConfig};
///
/// let base = DriverConfig { seed: 5, max_execs: 600, ..DriverConfig::default() };
/// let cfg = FleetConfig::new(2, 200, base);
/// let report = Fleet::new(pdf_subjects::arith::subject(), cfg.clone()).unwrap().run();
/// assert_eq!(report.shards.len(), 2);
/// // deterministic: a second identical run digests the same
/// let again = Fleet::new(pdf_subjects::arith::subject(), cfg).unwrap().run();
/// assert_eq!(report.digest(), again.digest());
/// ```
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    subject: Subject,
    workers: Vec<Fuzzer>,
    /// Per shard: how many of its valid inputs the coordinator already
    /// examined for promotion.
    seen_valid: Vec<usize>,
    /// Digests of every input promoted so far (the dedup set).
    promoted: BTreeSet<u64>,
    epoch: u64,
    promotions: u64,
    injections: u64,
    /// Coordinator-side execution scratch for the batched promotion
    /// check in tiered/fast exec modes; cleared between epochs, never
    /// reallocated.
    arena: ExecArena,
}

impl Fleet {
    /// Creates a fleet of fresh workers.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] on an invalid configuration (see
    /// [`FleetConfig::validate`]).
    pub fn new(subject: Subject, cfg: FleetConfig) -> Result<Fleet, FleetError> {
        cfg.validate()?;
        let workers = (0..cfg.shards)
            .map(|i| Fuzzer::new(subject, cfg.shard_config(i)))
            .collect();
        Ok(Fleet::assemble(subject, cfg, workers))
    }

    /// Creates a fleet whose workers replay previously recorded
    /// decision streams (`streams[i]` for shard `i`) instead of drawing
    /// from RNGs. With the same subject and configuration as the
    /// recording run, [`run`](Self::run) reproduces the original
    /// [`FleetReport::digest`] — the injections are re-derived by the
    /// coordinator, so only the random bytes need replaying.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] on an invalid configuration or when the
    /// stream count does not match the shard count.
    pub fn replaying(
        subject: Subject,
        cfg: FleetConfig,
        streams: Vec<Vec<u8>>,
    ) -> Result<Fleet, FleetError> {
        cfg.validate()?;
        if streams.len() != cfg.shards {
            return Err(FleetError::Config(format!(
                "{} replay streams for {} shards",
                streams.len(),
                cfg.shards
            )));
        }
        let workers = streams
            .into_iter()
            .enumerate()
            .map(|(i, stream)| Fuzzer::replaying(subject, cfg.shard_config(i), stream))
            .collect();
        Ok(Fleet::assemble(subject, cfg, workers))
    }

    fn assemble(subject: Subject, cfg: FleetConfig, workers: Vec<Fuzzer>) -> Fleet {
        let shards = workers.len();
        Fleet {
            cfg,
            subject,
            workers,
            seen_valid: vec![0; shards],
            promoted: BTreeSet::new(),
            epoch: 0,
            promotions: 0,
            injections: 0,
            arena: ExecArena::new(),
        }
    }

    /// Synchronization epochs completed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total subject executions across all shards so far.
    pub fn total_execs(&self) -> u64 {
        self.workers.iter().map(Fuzzer::execs).sum()
    }

    /// Whether every shard has finished its execution budget. A
    /// complete fleet's [`run_epoch`](Self::run_epoch) returns `true`
    /// immediately; an external scheduler (the `pdf-serve` daemon) uses
    /// this to finalize a resumed campaign without dispatching it.
    pub fn is_complete(&self) -> bool {
        self.workers.iter().all(Fuzzer::is_complete)
    }

    /// A cheap, read-only progress summary for subscribers: epoch
    /// counter, execution totals and distinct valid-input count. Safe to
    /// call between [`run_epoch`](Self::run_epoch) calls without
    /// touching the search (draws no RNG bytes, mutates nothing).
    pub fn progress(&self) -> FleetProgress {
        FleetProgress {
            epoch: self.epoch,
            total_execs: self.total_execs(),
            // Distinct inputs the coordinator has examined, plus the
            // tails it has not synced yet (at most one epoch behind;
            // unsynced duplicates may briefly overcount — this is a
            // progress display, not an accounting invariant).
            valid_inputs: self.promoted.len() as u64
                + self
                    .workers
                    .iter()
                    .zip(&self.seen_valid)
                    .map(|(w, &seen)| (w.valid_count() - seen) as u64)
                    .sum::<u64>(),
            complete: self.is_complete(),
        }
    }

    /// Runs one synchronization epoch: every shard advances by
    /// `sync_every` executions (or to completion), then the coordinator
    /// syncs. Returns `true` once every shard has finished its budget —
    /// further calls are harmless no-ops that keep returning `true`.
    pub fn run_epoch(&mut self) -> bool {
        self.epoch += 1;
        pdf_obs::record(|m| m.fleet_epochs.inc());
        let sync_every = self.cfg.sync_every;
        let leg = |(i, w): (usize, &mut Fuzzer)| {
            let _span = pdf_obs::span(pdf_obs::shard_label(i));
            let pause = w.execs().saturating_add(sync_every);
            w.run_until(&CampaignBudget::execs(pause))
        };
        let stops: Vec<StopReason> = if self.cfg.parallel && self.workers.len() > 1 {
            let registry = pdf_obs::current();
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .enumerate()
                    .map(|slot| {
                        let registry = registry.clone();
                        scope.spawn(move || {
                            let _metrics = registry.map(pdf_obs::install);
                            leg(slot)
                        })
                    })
                    .collect();
                // Joining in spawn order keeps the collected stop
                // reasons in shard order regardless of finish order.
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet shard thread panicked"))
                    .collect()
            })
        } else {
            self.workers.iter_mut().enumerate().map(leg).collect()
        };
        self.sync();
        stops.iter().all(|s| *s == StopReason::Finished)
    }

    /// The deterministic coordinator step: collect, dedup and promote
    /// newly closed valid inputs in shard index order.
    fn sync(&mut self) {
        let start = Instant::now();
        let mut fresh: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut merged = BranchSet::new();
        for (s, w) in self.workers.iter_mut().enumerate() {
            let sp = w.sync_point();
            let inputs = sp.valid_inputs();
            for input in &inputs[self.seen_valid[s]..] {
                if self.promoted.insert(digest_bytes(input)) {
                    fresh.push((s, input.clone()));
                }
            }
            self.seen_valid[s] = inputs.len();
            merged.union_with(sp.valid_branches());
        }
        // In the tiered exec modes, shards learn validity from escalated
        // runs; batch-confirm the epoch's promotions through one
        // amortized fast-failure pass before they fan out to every other
        // shard's queue. RNG-free and deterministic (subjects are pure),
        // so the fleet digest contract holds; full mode skips the pass
        // entirely, keeping pre-tiering digests byte-identical.
        if self.cfg.base.exec_mode != ExecMode::Full && !fresh.is_empty() {
            let inputs: Vec<&[u8]> = fresh.iter().map(|(_, i)| i.as_slice()).collect();
            let verdicts: Vec<bool> = self
                .subject
                .exec_batch_fast(&mut self.arena, &inputs)
                .iter()
                .map(|e| e.valid)
                .collect();
            let mut keep = verdicts.iter().copied();
            fresh.retain(|_| keep.next().unwrap_or(false));
        }
        let mut injected: u64 = 0;
        for (s, w) in self.workers.iter_mut().enumerate() {
            // Coverage first: the injected entries are then scored
            // against the fleet-wide vBr, not the stale local one.
            w.sync_point().adopt_coverage(&merged);
            for (origin, input) in &fresh {
                if s != *origin {
                    w.sync_point().inject(input.clone());
                    injected += 1;
                }
            }
        }
        self.promotions += fresh.len() as u64;
        self.injections += injected;
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        pdf_obs::record(|m| {
            m.fleet_promotions.add(fresh.len() as u64);
            m.fleet_injections.add(injected);
            m.fleet_sync_ns.observe(elapsed);
        });
    }

    /// Injects externally discovered valid inputs — e.g. inputs a
    /// grammar-generation flood (`pdf-gen`) found between epochs — into
    /// every shard's candidate queue, deduplicated against everything
    /// the coordinator has promoted so far. Returns how many inputs
    /// were fresh; each fresh input counts as one promotion and one
    /// injection per shard. RNG-free and processed in input order, so
    /// the fleet determinism contract extends to campaigns driven by a
    /// deterministic external source.
    pub fn inject_external(&mut self, inputs: &[Vec<u8>]) -> u64 {
        let mut fresh: u64 = 0;
        let mut injected: u64 = 0;
        for input in inputs {
            if self.promoted.insert(digest_bytes(input)) {
                fresh += 1;
                for w in self.workers.iter_mut() {
                    w.sync_point().inject(input.clone());
                    injected += 1;
                }
            }
        }
        self.promotions += fresh;
        self.injections += injected;
        pdf_obs::record(|m| {
            m.fleet_promotions.add(fresh);
            m.fleet_injections.add(injected);
        });
        fresh
    }

    /// Folds externally observed valid-input coverage (e.g. from a
    /// generator flood's escalated coverage runs) into every shard's
    /// scoring baseline, so shards stop chasing branches the external
    /// source already covered. Deterministic: a plain set union per
    /// shard.
    pub fn adopt_external_coverage(&mut self, coverage: &BranchSet) {
        for w in self.workers.iter_mut() {
            w.sync_point().adopt_coverage(coverage);
        }
    }

    /// Runs the whole campaign: epochs until every shard finishes, then
    /// the merged report.
    pub fn run(mut self) -> FleetReport {
        while !self.run_epoch() {}
        self.into_report()
    }

    /// Finalizes the fleet into its merged report. Call after
    /// [`run_epoch`](Self::run_epoch) returns `true` (calling earlier
    /// reports the campaign as paused mid-flight, like
    /// [`Fuzzer::into_report`]).
    pub fn into_report(self) -> FleetReport {
        let shard_count = self.workers.len() as u64;
        let shards: Vec<FuzzReport> = self.workers.into_iter().map(Fuzzer::into_report).collect();
        let valid_branches = merge_coverage(shards.iter().map(|r| &r.valid_branches));
        let all_branches = merge_coverage(shards.iter().map(|r| &r.all_branches));
        let total_execs = shards.iter().map(|r| r.execs).sum();
        // Dedup valid inputs by digest, keeping the cheapest discovery
        // (scaled to total fleet executions — see the field docs), then
        // order by cost so the list reads as fleet discovery order.
        let mut best: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for r in &shards {
            for (input, &at) in r.valid_inputs.iter().zip(&r.valid_found_at) {
                let cost = at.saturating_mul(shard_count);
                if seen.insert(digest_bytes(input)) {
                    best.push((cost, input.clone()));
                } else if let Some(slot) = best.iter_mut().find(|(_, existing)| existing == input) {
                    slot.0 = slot.0.min(cost);
                }
            }
        }
        best.sort();
        let (valid_found_at, valid_inputs) = best.into_iter().unzip();
        FleetReport {
            shards,
            valid_inputs,
            valid_found_at,
            valid_branches,
            all_branches,
            total_execs,
            epochs: self.epoch,
            promotions: self.promotions,
            injections: self.injections,
        }
    }

    /// Writes a fleet checkpoint into `dir`: one `shard-NN.ck` per
    /// worker plus the `fleet.manifest` (see [`FleetManifest`]).
    /// Meaningful at epoch boundaries — between
    /// [`run_epoch`](Self::run_epoch) calls — which is also when the
    /// coordinator state is simplest. [`resume_from`](Self::resume_from)
    /// restores the fleet byte-identically.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the directory cannot be created or a
    /// file cannot be written.
    ///
    /// # Panics
    ///
    /// Panics on a [`replaying`](Self::replaying) fleet, like
    /// [`Fuzzer::checkpoint`].
    pub fn checkpoint_to(&self, dir: impl AsRef<Path>) -> Result<(), FleetError> {
        let dir = dir.as_ref();
        let io = |e: std::io::Error| FleetError::Io(e.to_string());
        std::fs::create_dir_all(dir).map_err(io)?;
        for (i, w) in self.workers.iter().enumerate() {
            w.checkpoint_to(dir.join(shard_file(i))).map_err(io)?;
        }
        let manifest = FleetManifest {
            subject: self.subject.name().to_string(),
            config_hash: self.cfg.base.config_hash(),
            base_seed: self.cfg.base.seed,
            shards: self.cfg.shards as u64,
            sync_every: self.cfg.sync_every,
            epoch: self.epoch,
            promotions: self.promotions,
            injections: self.injections,
            seen_valid: self.seen_valid.iter().map(|&n| n as u64).collect(),
            promoted: self.promoted.iter().copied().collect(),
        };
        std::fs::write(dir.join(MANIFEST_FILE), manifest.encode()).map_err(io)
    }

    /// Reconstructs a checkpointed fleet from `dir`. The subject and
    /// configuration must match the checkpointing run; drift is
    /// detected via the manifest (subject name, config hash, base
    /// seed, shard count, sync interval) and again per shard by the
    /// `pdf-checkpoint` codec.
    ///
    /// # Errors
    ///
    /// [`FleetError::Drift`] on any mismatch, [`FleetError::Shard`]
    /// when a per-shard checkpoint fails to decode, [`FleetError::Io`]
    /// on unreadable files.
    pub fn resume_from(
        subject: Subject,
        cfg: FleetConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Fleet, FleetError> {
        cfg.validate()?;
        let dir = dir.as_ref();
        let io = |e: std::io::Error| FleetError::Io(e.to_string());
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).map_err(io)?;
        let m = FleetManifest::decode(&text)?;
        let drift = |what: String| Err(FleetError::Drift(what));
        if m.subject != subject.name() {
            return drift(format!(
                "manifest is for subject {:?}, resuming with {:?}",
                m.subject,
                subject.name()
            ));
        }
        if m.config_hash != cfg.base.config_hash() {
            return drift("driver configuration changed since checkpoint".to_string());
        }
        if m.base_seed != cfg.base.seed {
            return drift(format!(
                "manifest base seed {} != configured {}",
                m.base_seed, cfg.base.seed
            ));
        }
        if m.shards != cfg.shards as u64 {
            return drift(format!(
                "manifest has {} shards, configured {}",
                m.shards, cfg.shards
            ));
        }
        if m.sync_every != cfg.sync_every {
            return drift(format!(
                "manifest sync-every {} != configured {}",
                m.sync_every, cfg.sync_every
            ));
        }
        let workers = (0..cfg.shards)
            .map(|i| Fuzzer::resume_from(subject, cfg.shard_config(i), dir.join(shard_file(i))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Fleet {
            subject,
            workers,
            seen_valid: m.seen_valid.iter().map(|&n| n as usize).collect(),
            promoted: m.promoted.into_iter().collect(),
            epoch: m.epoch,
            promotions: m.promotions,
            injections: m.injections,
            arena: ExecArena::new(),
            cfg,
        })
    }

    /// [`resume_from`](Self::resume_from) with graceful degradation
    /// over checkpoint *generations*: tries each directory in `dirs`
    /// in order (newest first) and resumes from the first one that
    /// decodes. A corrupt or unreadable generation — a torn
    /// checkpoint write, a truncated manifest — falls through to the
    /// next; a [`Drift`](FleetError::Drift)-class failure aborts
    /// immediately, because every generation was written under the
    /// same configuration and falling back cannot repair a config
    /// mismatch.
    ///
    /// Returns the resumed fleet and the index into `dirs` that
    /// succeeded, so callers can quarantine the generations that were
    /// skipped.
    ///
    /// # Errors
    ///
    /// The *first* error encountered when every generation fails (the
    /// newest generation's failure is the most diagnostic), or the
    /// drift error that aborted the walk.
    pub fn resume_with_fallback<P: AsRef<Path>>(
        subject: Subject,
        cfg: FleetConfig,
        dirs: &[P],
    ) -> Result<(Fleet, usize), FleetError> {
        let mut first_err: Option<FleetError> = None;
        for (i, dir) in dirs.iter().enumerate() {
            match Fleet::resume_from(subject, cfg.clone(), dir.as_ref()) {
                Ok(fleet) => return Ok((fleet, i)),
                Err(e) => {
                    if e.class() == pdf_core::ErrorClass::Drift {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err
            .unwrap_or_else(|| FleetError::Config("no checkpoint generations given".to_string())))
    }
}

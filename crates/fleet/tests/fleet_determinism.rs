//! The fleet determinism contract, end to end: fixed
//! `(seed, shards, sync_every)` reproduces byte-identical per-shard
//! journals and merged coverage digests across runs — serial or
//! parallel, replayed from recorded streams, and across a mid-run
//! checkpoint/kill/resume.

use pdf_core::DriverConfig;
use pdf_fleet::{merge_coverage, Fleet, FleetConfig, FleetError, FleetManifest};

fn base_cfg(seed: u64, max_execs: u64) -> DriverConfig {
    DriverConfig {
        seed,
        max_execs,
        ..DriverConfig::default()
    }
}

fn fleet_cfg(shards: usize, sync_every: u64, seed: u64, per_shard_execs: u64) -> FleetConfig {
    FleetConfig::new(shards, sync_every, base_cfg(seed, per_shard_execs))
}

#[test]
fn same_config_reproduces_digest_and_journals() {
    let subject = pdf_subjects::arith::subject();
    let cfg = fleet_cfg(3, 300, 11, 1_500);
    let a = Fleet::new(subject, cfg.clone()).unwrap().run();
    let b = Fleet::new(subject, cfg).unwrap().run();
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.coverage_digest(), b.coverage_digest());
    for (ra, rb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(
            ra.decisions, rb.decisions,
            "per-shard journals must be byte-identical"
        );
        assert_eq!(ra.digest(), rb.digest());
    }
}

#[test]
fn parallel_and_serial_fleets_are_digest_identical() {
    let subject = pdf_subjects::dyck::subject();
    let mut cfg = fleet_cfg(4, 200, 5, 1_000);
    cfg.parallel = true;
    let par = Fleet::new(subject, cfg.clone()).unwrap().run();
    cfg.parallel = false;
    let ser = Fleet::new(subject, cfg).unwrap().run();
    assert_eq!(par.digest(), ser.digest());
}

#[test]
fn single_shard_fleet_matches_plain_fuzzer() {
    // With one shard there is nobody to exchange inputs with: the fleet
    // is the plain driver plus pause points, which are invisible.
    let subject = pdf_subjects::arith::subject();
    let cfg = fleet_cfg(1, 250, 9, 1_200);
    let fleet = Fleet::new(subject, cfg).unwrap().run();
    let solo = pdf_core::Fuzzer::new(subject, base_cfg(9, 1_200)).run();
    assert_eq!(fleet.shards.len(), 1);
    assert_eq!(fleet.shards[0].digest(), solo.digest());
    assert_eq!(fleet.total_execs, solo.execs);
}

#[test]
fn per_shard_journals_replay_to_identical_digests() {
    let subject = pdf_subjects::arith::subject();
    let cfg = fleet_cfg(2, 300, 21, 1_200);
    let recorded = Fleet::new(subject, cfg.clone()).unwrap().run();
    let streams: Vec<Vec<u8>> = recorded
        .shards
        .iter()
        .map(|r| r.decisions.clone())
        .collect();
    let replayed = Fleet::replaying(subject, cfg, streams).unwrap().run();
    assert_eq!(recorded.digest(), replayed.digest());
    for (ra, rb) in recorded.shards.iter().zip(&replayed.shards) {
        assert_eq!(ra.digest(), rb.digest());
    }
}

#[test]
fn checkpoint_and_resume_is_digest_identical() {
    let subject = pdf_subjects::dyck::subject();
    let cfg = fleet_cfg(2, 250, 33, 1_500);
    let uninterrupted = Fleet::new(subject, cfg.clone()).unwrap().run();

    let dir = std::env::temp_dir().join(format!("pdf-fleet-test-{}", std::process::id()));
    let mut fleet = Fleet::new(subject, cfg.clone()).unwrap();
    // Run two epochs, checkpoint, and "kill" the fleet by dropping it.
    assert!(!fleet.run_epoch());
    assert!(!fleet.run_epoch());
    fleet.checkpoint_to(&dir).unwrap();
    drop(fleet);

    let resumed = Fleet::resume_from(subject, cfg, &dir).unwrap().run();
    assert_eq!(uninterrupted.digest(), resumed.digest());
    assert_eq!(uninterrupted.coverage_digest(), resumed.coverage_digest());
    for (ra, rb) in uninterrupted.shards.iter().zip(&resumed.shards) {
        assert_eq!(ra.decisions, rb.decisions);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_generation_falls_back_to_previous_epoch() {
    let subject = pdf_subjects::dyck::subject();
    let cfg = fleet_cfg(2, 250, 44, 1_500);
    let uninterrupted = Fleet::new(subject, cfg.clone()).unwrap().run();

    let root = std::env::temp_dir().join(format!("pdf-fleet-fallback-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let (prev, cur) = (root.join("ck.prev"), root.join("ck"));
    let mut fleet = Fleet::new(subject, cfg.clone()).unwrap();
    assert!(!fleet.run_epoch());
    fleet.checkpoint_to(&prev).unwrap();
    assert!(!fleet.run_epoch());
    fleet.checkpoint_to(&cur).unwrap();
    drop(fleet);

    // Tear the newest generation's manifest mid-line.
    let manifest = cur.join(pdf_fleet::MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, &text[..text.len() / 2]).unwrap();

    // Fallback resumes the epoch-older generation — losing one epoch,
    // which the deterministic re-run then repays digest-identically.
    let (resumed, picked) =
        Fleet::resume_with_fallback(subject, cfg.clone(), &[&cur, &prev]).unwrap();
    assert_eq!(picked, 1, "should have skipped the corrupt generation");
    assert_eq!(resumed.run().digest(), uninterrupted.digest());

    // Drift still aborts immediately, even with a healthy fallback.
    let mut wrong_seed = cfg;
    wrong_seed.base.seed += 1;
    assert!(matches!(
        Fleet::resume_with_fallback(subject, wrong_seed, &[&cur, &prev]),
        Err(FleetError::Drift(_))
    ));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn tiered_fleet_is_deterministic_and_finds_valid_inputs() {
    // the batched fast-failure promotion pass at sync epochs is RNG-free
    // and deterministic, so the fleet digest contract extends to the
    // tiered exec modes
    for mode in [pdf_core::ExecMode::Fast, pdf_core::ExecMode::Tiered] {
        let subject = pdf_subjects::arith::subject();
        let mut cfg = fleet_cfg(3, 300, 11, 1_500);
        cfg.base.exec_mode = mode;
        let a = Fleet::new(subject, cfg.clone()).unwrap().run();
        let b = Fleet::new(subject, cfg).unwrap().run();
        assert_eq!(a.digest(), b.digest(), "{mode:?} fleet not deterministic");
        assert!(
            !a.valid_inputs.is_empty(),
            "{mode:?} fleet found no valid inputs"
        );
        for input in &a.valid_inputs {
            assert!(subject.run(input).valid);
        }
    }
}

#[test]
fn resume_rejects_drift() {
    let subject = pdf_subjects::dyck::subject();
    let cfg = fleet_cfg(2, 200, 1, 600);
    let dir = std::env::temp_dir().join(format!("pdf-fleet-drift-{}", std::process::id()));
    let mut fleet = Fleet::new(subject, cfg.clone()).unwrap();
    fleet.run_epoch();
    fleet.checkpoint_to(&dir).unwrap();

    let other_subject = pdf_subjects::arith::subject();
    assert!(matches!(
        Fleet::resume_from(other_subject, cfg.clone(), &dir),
        Err(FleetError::Drift(_))
    ));
    let mut wrong_seed = cfg.clone();
    wrong_seed.base.seed += 1;
    assert!(matches!(
        Fleet::resume_from(subject, wrong_seed, &dir),
        Err(FleetError::Drift(_))
    ));
    let mut wrong_shards = cfg.clone();
    wrong_shards.shards = 3;
    assert!(matches!(
        Fleet::resume_from(subject, wrong_shards, &dir),
        Err(FleetError::Drift(_))
    ));
    let mut wrong_sync = cfg;
    wrong_sync.sync_every = 999;
    assert!(matches!(
        Fleet::resume_from(subject, wrong_sync, &dir),
        Err(FleetError::Drift(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_coverage_is_the_union_of_shard_coverage() {
    let subject = pdf_subjects::arith::subject();
    let report = Fleet::new(subject, fleet_cfg(3, 200, 2, 800))
        .unwrap()
        .run();
    let forward = merge_coverage(report.shards.iter().map(|r| &r.all_branches));
    let backward = merge_coverage(report.shards.iter().rev().map(|r| &r.all_branches));
    assert_eq!(forward, backward, "merge must be order-independent");
    assert_eq!(report.all_branches, forward);
    for r in &report.shards {
        for b in r.all_branches.iter() {
            assert!(report.all_branches.contains(b));
        }
    }
}

#[test]
fn fleet_valid_inputs_are_deduplicated_and_really_valid() {
    let subject = pdf_subjects::arith::subject();
    let report = Fleet::new(subject, fleet_cfg(3, 150, 4, 900))
        .unwrap()
        .run();
    let mut seen = std::collections::HashSet::new();
    for input in &report.valid_inputs {
        assert!(seen.insert(input.clone()), "duplicate fleet valid input");
        assert!(subject.run(input).valid);
    }
    assert_eq!(report.valid_inputs.len(), report.valid_found_at.len());
    assert!(
        report.valid_found_at.windows(2).all(|w| w[0] <= w[1]),
        "fleet discovery order must be sorted by cost"
    );
}

#[test]
fn invalid_configs_are_rejected() {
    let subject = pdf_subjects::arith::subject();
    assert!(matches!(
        Fleet::new(subject, fleet_cfg(0, 100, 1, 100)),
        Err(FleetError::Config(_))
    ));
    assert!(matches!(
        Fleet::new(subject, fleet_cfg(2, 0, 1, 100)),
        Err(FleetError::Config(_))
    ));
    assert!(matches!(
        Fleet::replaying(subject, fleet_cfg(2, 100, 1, 100), vec![Vec::new()]),
        Err(FleetError::Config(_))
    ));
}

#[test]
fn manifest_survives_checkpoint_round_trip() {
    let subject = pdf_subjects::dyck::subject();
    let cfg = fleet_cfg(2, 200, 13, 800);
    let dir = std::env::temp_dir().join(format!("pdf-fleet-manifest-{}", std::process::id()));
    let mut fleet = Fleet::new(subject, cfg).unwrap();
    fleet.run_epoch();
    fleet.run_epoch();
    fleet.checkpoint_to(&dir).unwrap();
    let text = std::fs::read_to_string(dir.join(pdf_fleet::MANIFEST_FILE)).unwrap();
    let m = FleetManifest::decode(&text).unwrap();
    assert_eq!(m.subject, "dyck");
    assert_eq!(m.shards, 2);
    assert_eq!(m.sync_every, 200);
    assert_eq!(m.epoch, 2);
    assert_eq!(m.encode(), text, "manifest encoding must be canonical");
    std::fs::remove_dir_all(&dir).ok();
}

//! Torn-state recovery suite: deterministic corruption of each durable
//! artifact — journal tail, checkpoint generations, campaign meta —
//! followed by a restart that must salvage what is legal, quarantine
//! what is not, and still reproduce the fault-free digests. These are
//! the targeted companions to the randomized chaos soak: every
//! recovery path in the fault model gets its own worst case here.

use std::path::PathBuf;

use pdf_fleet::Fleet;
use pdf_serve::{
    checkpoint_dir, fleet_config, journal_path, prev_checkpoint_dir, read_journal, CampaignSpec,
    Daemon, DaemonConfig, Phase,
};
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(subject: &str, seed: u64) -> CampaignSpec {
    CampaignSpec {
        subject: subject.into(),
        seed,
        execs: 600,
        shards: 2,
        sync_every: 50,
        exec_mode: pdf_core::ExecMode::Full,
        deadline_ms: None,
        idempotency_key: None,
    }
}

fn baseline(spec: &CampaignSpec) -> pdf_fleet::FleetReport {
    let info = pdf_subjects::by_name(&spec.subject).unwrap();
    Fleet::new(info.subject, fleet_config(spec)).unwrap().run()
}

/// Runs `spec` on a fresh persistent daemon until it has at least two
/// checkpoint epochs behind it, then hard-kills. Returns the id.
fn run_then_kill(dir: &PathBuf, spec: &CampaignSpec) -> u64 {
    let daemon = Daemon::open(DaemonConfig::persistent(2, dir)).unwrap();
    let id = daemon.submit(spec.clone()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while daemon.status(id).unwrap().epoch < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "campaign never reached epoch 2"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.hard_stop();
    id
}

fn finish(dir: &PathBuf, id: u64, spec: &CampaignSpec) -> pdf_serve::CampaignStatus {
    let daemon = Daemon::open(DaemonConfig::persistent(2, dir)).unwrap();
    assert!(daemon.wait_idle(Duration::from_secs(120)), "daemon wedged");
    let status = daemon.status(id).unwrap();
    assert_eq!(status.phase, Phase::Done);
    let base = baseline(spec);
    assert_eq!(status.digest, Some(base.digest()), "digest diverged");
    assert_eq!(status.coverage, Some(base.coverage_digest()));
    daemon.shutdown();
    status
}

#[test]
fn corrupt_current_checkpoint_falls_back_one_epoch() {
    let dir = tmpdir("torn-ck-cur");
    let spec = spec("dyck", 41);
    let id = run_then_kill(&dir, &spec);

    // Tear the current generation mid-manifest; ck.prev stays legal.
    let manifest = checkpoint_dir(&dir, id).join(pdf_fleet::MANIFEST_FILE);
    let text = std::fs::read(&manifest).unwrap();
    assert!(prev_checkpoint_dir(&dir, id)
        .join(pdf_fleet::MANIFEST_FILE)
        .exists());
    std::fs::write(&manifest, &text[..text.len() / 2]).unwrap();

    finish(&dir, id, &spec);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn both_checkpoint_generations_corrupt_restarts_fresh_and_identical() {
    let dir = tmpdir("torn-ck-both");
    let spec = spec("arith", 42);
    let id = run_then_kill(&dir, &spec);

    // No generation survives: the fallback chain is exhausted and the
    // daemon must quarantine both and rerun from exec zero — losing
    // time, never results, because the fleet is deterministic.
    for ck in [checkpoint_dir(&dir, id), prev_checkpoint_dir(&dir, id)] {
        let manifest = ck.join(pdf_fleet::MANIFEST_FILE);
        if manifest.exists() {
            std::fs::write(&manifest, b"pdf-fleet v1\ngarbage beyond repair\n").unwrap();
        }
    }

    finish(&dir, id, &spec);
    // The wreckage was set aside for post-mortem, not deleted.
    let campaign_dir = checkpoint_dir(&dir, id);
    let campaign_dir = campaign_dir.parent().unwrap();
    let quarantined = std::fs::read_dir(campaign_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().contains("quarantine"));
    assert!(quarantined, "corrupt checkpoints were not quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_journal_tail_is_quarantined_and_history_preserved() {
    let dir = tmpdir("torn-journal");
    let spec = spec("ini", 43);
    let id = run_then_kill(&dir, &spec);

    // A hard kill mid-append leaves a torn line; pile on worse: raw
    // binary garbage and a syntactically valid record with a seq gap.
    let journal = journal_path(&dir);
    let before = read_journal(&journal).unwrap().len();
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .unwrap();
    f.write_all(b"txn seq=9999 id=1 ev=start from=queued to=running\n")
        .unwrap();
    f.write_all(&[0xff, 0xfe, 0x00, 0x41, 0x0a]).unwrap();
    f.write_all(b"txn seq=").unwrap(); // torn mid-line, no newline
    drop(f);

    finish(&dir, id, &spec);

    // The salvaged prefix kept every legal record, the tail went to
    // the quarantine file, and the rewritten journal parses clean and
    // then kept growing through the finishing run.
    let quarantine = journal.with_file_name("serve.journal.quarantine");
    assert!(quarantine.exists(), "no quarantine file at {quarantine:?}");
    let recovered = read_journal(&journal).unwrap();
    assert!(
        recovered.len() > before,
        "journal lost salvageable history ({} <= {before})",
        recovered.len()
    );
    for (i, r) in recovered.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq gap survived recovery");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_meta_is_quarantined_without_sinking_neighbors() {
    let dir = tmpdir("torn-meta");
    let a_spec = spec("csv", 44);
    let b_spec = spec("dyck", 45);
    let (a, b) = {
        let daemon = Daemon::open(DaemonConfig::persistent(2, &dir)).unwrap();
        let a = daemon.submit(a_spec.clone()).unwrap();
        let b = daemon.submit(b_spec.clone()).unwrap();
        assert!(daemon.wait_idle(Duration::from_secs(120)));
        daemon.shutdown();
        (a, b)
    };

    // Scribble over campaign a's meta file.
    let meta = checkpoint_dir(&dir, a).parent().unwrap().join("meta");
    std::fs::write(&meta, b"pdf-serve-meta v1\nnot a campaign line\n").unwrap();

    let daemon = Daemon::open(DaemonConfig::persistent(2, &dir)).unwrap();
    // a is quarantined and gone; b's record (and digest) is untouched.
    assert!(daemon.status(a).is_none(), "corrupt campaign resurrected");
    let status = daemon.status(b).unwrap();
    assert_eq!(status.phase, Phase::Done);
    assert_eq!(status.digest, Some(baseline(&b_spec).digest()));
    assert!(
        daemon.registry().serve_checkpoint_quarantined.get() > 0,
        "quarantine not counted"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

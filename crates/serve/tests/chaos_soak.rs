//! Chaos soak: dozens of campaigns run to completion while a seeded
//! [`FaultPlan`] actively tears journal lines, fails checkpoint and
//! meta writes with `ENOSPC`, truncates and drops socket frames, and
//! stalls everything at random — plus one hard kill and restart in the
//! middle, so recovery itself runs under fault injection. The bar is
//! the same as the quiet soak's: every campaign ends `Done` and every
//! digest is byte-identical to its fault-free serial baseline. Chaos
//! may cost retries and degraded writes; it may never cost coverage
//! results.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pdf_fleet::Fleet;
use pdf_serve::{
    fleet_config, CampaignSpec, Daemon, DaemonConfig, FaultPlan, FaultSpec, Phase, RetryClient,
    RetryPolicy, Server, ServerConfig,
};

const CAMPAIGNS: u64 = 32;
const WORKERS: usize = 4;
const SUBJECTS: [&str; 4] = ["arith", "dyck", "ini", "csv"];
const CHAOS_SEED: u64 = 0xC4A0_55EE;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_for(i: u64) -> CampaignSpec {
    CampaignSpec {
        subject: SUBJECTS[(i % SUBJECTS.len() as u64) as usize].into(),
        seed: 7000 + i,
        execs: 150,
        shards: 1 + (i % 2),
        sync_every: 30,
        exec_mode: pdf_core::ExecMode::Full,
        deadline_ms: None,
        idempotency_key: None,
    }
}

fn patient() -> RetryPolicy {
    RetryPolicy {
        max_retries: 24,
        ..RetryPolicy::default()
    }
}

#[test]
fn chaos_soak_matches_fault_free_baselines() {
    let dir = tmpdir("chaos-soak");
    let plan = Arc::new(FaultPlan::new(CHAOS_SEED, FaultSpec::SOAK));
    let server_cfg = || ServerConfig {
        faults: Some(Arc::clone(&plan)),
        ..ServerConfig::default()
    };
    let daemon_cfg = || DaemonConfig::persistent(WORKERS, &dir).with_faults(Arc::clone(&plan));

    // Phase 1: submit the whole burst over chaotic sockets. Every
    // submission rides the retrying client, so injected disconnects
    // and short reads cost reconnects, and the auto idempotency key
    // keeps a retried submit from forking a duplicate campaign.
    let daemon = Arc::new(Daemon::open(daemon_cfg()).unwrap());
    let mut server = Server::start_with(Arc::clone(&daemon), "127.0.0.1:0", server_cfg()).unwrap();
    let mut client = RetryClient::with_policy(&server.local_addr().to_string(), patient());
    let ids: Vec<u64> = (0..CAMPAIGNS)
        .map(|i| client.submit(&spec_for(i)).unwrap())
        .collect();

    // Stream one campaign's progress through the chaos: the watch must
    // survive mid-stream drops by reconnecting (ticks may repeat) and
    // still deliver a terminal row.
    let watched = client.watch(ids[0], |_| {}).unwrap();
    assert!(watched.phase.is_terminal(), "watch returned {watched:?}");

    // Phase 2: yank the power cord while the pool is busy, leaving
    // whatever torn tails and half-rotated checkpoints the fault plan
    // produced, then restart on the same directory — recovery has to
    // dig the service out of chaos-damaged state.
    daemon.hard_stop();
    server.stop();
    drop(client);
    let daemon = Arc::new(Daemon::open(daemon_cfg()).unwrap());
    let mut server = Server::start_with(Arc::clone(&daemon), "127.0.0.1:0", server_cfg()).unwrap();
    let mut client = RetryClient::with_policy(&server.local_addr().to_string(), patient());

    // Phase 3: drain to completion (chaos still active) and hold every
    // campaign to its fault-free serial baseline.
    assert!(
        daemon.wait_idle(Duration::from_secs(240)),
        "daemon wedged under chaos"
    );
    for (i, id) in ids.iter().enumerate() {
        let status = client.status(*id).unwrap();
        assert_eq!(status.phase, Phase::Done, "campaign {id} ended {status:?}");
        let spec = spec_for(i as u64);
        let info = pdf_subjects::by_name(&spec.subject).unwrap();
        let base = Fleet::new(info.subject, fleet_config(&spec)).unwrap().run();
        assert_eq!(
            status.digest,
            Some(base.digest()),
            "campaign {id} ({}/{}) diverged from its fault-free baseline",
            spec.subject,
            spec.seed
        );
        assert_eq!(status.coverage, Some(base.coverage_digest()));
        assert_eq!(status.spent, base.total_execs);
    }
    assert_eq!(daemon.busy_slots(), 0);

    // The run must have actually been chaotic, and absorbed it: faults
    // fired, and the client needed its retry loop.
    assert!(plan.injected() > 0, "fault plan never fired");
    eprintln!(
        "chaos soak: {} faults injected, {} client retries, degraded writes {}, \
         journal lines recovered {}, checkpoints quarantined {}",
        plan.injected(),
        client.retries(),
        daemon.registry().serve_write_degraded.get(),
        daemon.registry().serve_journal_recovered.get(),
        daemon.registry().serve_checkpoint_quarantined.get(),
    );

    server.stop();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

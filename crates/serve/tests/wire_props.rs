//! Property tests for the `pdf-wire v1` codec and the campaign
//! lifecycle state machine.
//!
//! Codec: every expressible request and status round-trips through its
//! line encoding, and arbitrary garbage is rejected with an error, not
//! a panic. Lifecycle: `transition` accepts exactly the pairs in
//! [`LEGAL_TRANSITIONS`], terminal phases absorb every event, and any
//! event sequence applied from `Queued` only ever visits phases the
//! table can reach.

use std::collections::BTreeSet;

use pdf_serve::{
    status_fields, status_from_fields, transition, CampaignSpec, CampaignStatus, Event, Phase,
    Request, Response, WireError, LEGAL_TRANSITIONS,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Bare-token strategy matching the wire grammar for subject names.
fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,12}"
}

fn exec_mode() -> BoxedStrategy<pdf_core::ExecMode> {
    prop_oneof![
        Just(pdf_core::ExecMode::Full),
        Just(pdf_core::ExecMode::Fast),
        Just(pdf_core::ExecMode::Tiered),
    ]
}

fn spec() -> impl Strategy<Value = CampaignSpec> {
    (
        (token(), any::<u64>()),
        (1u64..1_000_000, 1u64..9, 1u64..10_000),
        exec_mode(),
        ((0u64..2, 1u64..1_000_000), (0u64..2, token())),
    )
        .prop_map(
            |(
                (subject, seed),
                (execs, shards, sync_every),
                mode,
                ((has_dl, dl), (has_key, key)),
            )| CampaignSpec {
                subject,
                seed,
                execs,
                shards,
                sync_every,
                exec_mode: mode,
                deadline_ms: (has_dl == 1).then_some(dl),
                idempotency_key: (has_key == 1).then_some(key),
            },
        )
}

fn phase() -> BoxedStrategy<Phase> {
    prop_oneof![
        Just(Phase::Queued),
        Just(Phase::Running),
        Just(Phase::Paused),
        Just(Phase::Done),
        Just(Phase::Failed),
        Just(Phase::Cancelled),
    ]
}

fn event() -> BoxedStrategy<Event> {
    prop_oneof![
        Just(Event::Dispatch),
        Just(Event::Pause),
        Just(Event::Resume),
        Just(Event::Finish),
        Just(Event::Fail),
        Just(Event::Cancel),
        Just(Event::Requeue),
    ]
}

fn status() -> impl Strategy<Value = CampaignStatus> {
    (
        (any::<u64>(), phase(), spec()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (0u64..2, any::<u64>(), any::<u64>()),
        (0u64..2, "[ -~]{0,40}"),
    )
        .prop_map(
            |((id, phase, spec), (epoch, spent, valid), (has_digest, d, cov), (has_err, err))| {
                CampaignStatus {
                    id,
                    phase,
                    spec,
                    epoch,
                    spent,
                    valid,
                    digest: (has_digest == 1).then_some(d),
                    coverage: (has_digest == 1).then_some(cov),
                    error: (has_err == 1)
                        .then_some(err.trim().to_string())
                        .filter(|e| !e.is_empty()),
                }
            },
        )
}

fn request() -> impl Strategy<Value = Request> {
    (0u64..10, spec(), any::<u64>()).prop_map(|(kind, spec, id)| match kind {
        0 => Request::Submit(spec),
        1 => Request::Status { id },
        2 => Request::Pause { id },
        3 => Request::Resume { id },
        4 => Request::Cancel { id },
        5 => Request::List,
        6 => Request::Watch { id },
        7 => Request::Metrics,
        8 => Request::Ping,
        _ => Request::Shutdown,
    })
}

proptest! {
    #[test]
    fn requests_round_trip(req in request()) {
        let line = req.encode();
        let back = Request::decode(&line).expect("codec accepts its own output");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn statuses_round_trip(status in status()) {
        let fields = status_fields(&status);
        // Through the response framing too: a status travels as the
        // field list of an `ok`/`item`/`end` frame.
        let resp = Response::Ok(fields);
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(resp.encode().into_bytes()));
        let Response::Ok(fields) = Response::read(&mut reader).expect("frame decodes") else {
            panic!("ok frame decoded as something else");
        };
        let back = status_from_fields(&fields).expect("status fields decode");
        prop_assert_eq!(back, status);
    }

    #[test]
    fn garbage_lines_rejected_without_panic(line in "[ -~]{0,80}") {
        // Any printable-ASCII line either decodes or errors; no panics,
        // and decode(encode(decode(line))) is stable when it decodes.
        if let Ok(req) = Request::decode(&line) {
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn garbage_frames_rejected_without_panic(text in "[ -~\n]{0,120}") {
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(text.into_bytes()));
        // Reading frames off arbitrary bytes terminates with a value or
        // an error — never a panic, never a hang.
        for _ in 0..8 {
            match Response::read(&mut reader) {
                Ok(_) => {}
                Err(WireError::UnexpectedEof) => break,
                Err(_) => break,
            }
        }
    }

    #[test]
    fn event_sequences_stay_inside_the_table(events in vec(event(), 0..32)) {
        let reachable: BTreeSet<Phase> = LEGAL_TRANSITIONS
            .iter()
            .map(|&(_, _, to)| to)
            .chain([Phase::Queued])
            .collect();
        let mut phase = Phase::Queued;
        for e in events {
            match transition(phase, e) {
                Ok(next) => {
                    prop_assert!(
                        LEGAL_TRANSITIONS.contains(&(phase, e, next)),
                        "transition {phase:?} --{e:?}--> {next:?} not in the table"
                    );
                    phase = next;
                }
                Err(ill) => {
                    prop_assert_eq!(ill.from, phase);
                    prop_assert_eq!(ill.event, e);
                }
            }
            prop_assert!(reachable.contains(&phase));
            if phase.is_terminal() {
                for &e in &Event::ALL {
                    prop_assert!(transition(phase, e).is_err(), "terminal phase accepted {e:?}");
                }
            }
        }
    }
}

/// `transition` accepts exactly the pairs listed in the table — checked
/// exhaustively, no randomness needed.
#[test]
fn transition_matches_table_exhaustively() {
    for &from in &Phase::ALL {
        for &event in &Event::ALL {
            let legal = LEGAL_TRANSITIONS
                .iter()
                .find(|&&(f, e, _)| f == from && e == event);
            match (transition(from, event), legal) {
                (Ok(to), Some(&(_, _, want))) => assert_eq!(to, want),
                (Err(_), None) => {}
                (got, want) => {
                    panic!("{from:?} x {event:?}: transition says {got:?}, table says {want:?}")
                }
            }
        }
    }
    // Determinism of the table itself: no (from, event) pair appears twice.
    let mut pairs = BTreeSet::new();
    for &(from, event, _) in &LEGAL_TRANSITIONS {
        assert!(
            pairs.insert((from, event.name())),
            "duplicate edge {from:?} x {event:?}"
        );
    }
}

/// Phase and event names round-trip through their wire spellings.
#[test]
fn names_round_trip() {
    for &p in &Phase::ALL {
        assert_eq!(Phase::parse(p.name()), Some(p));
    }
    for &e in &Event::ALL {
        assert_eq!(Event::parse(e.name()), Some(e));
    }
    assert_eq!(Phase::parse("limbo"), None);
    assert_eq!(Event::parse("explode"), None);
}

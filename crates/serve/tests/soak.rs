//! Soak test: a few hundred small campaigns thrown at one daemon over
//! real loopback sockets, with randomly interleaved pause / resume /
//! cancel meddling from concurrent connections. At the end every
//! campaign must be terminal, every completed campaign's digest must
//! equal its serial single-process baseline, the worker pool's slots
//! must all be back, and the journal must hold a legal history for
//! every campaign the daemon ever saw.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdf_fleet::Fleet;
use pdf_serve::{
    fleet_config, journal_path, read_journal, transition, CampaignSpec, Daemon, DaemonConfig,
    Phase, ServeClient, Server,
};

const CAMPAIGNS: u64 = 208;
const WORKERS: usize = 4;
const SUBJECTS: [&str; 4] = ["arith", "dyck", "ini", "csv"];

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_for(i: u64) -> CampaignSpec {
    CampaignSpec {
        subject: SUBJECTS[(i % SUBJECTS.len() as u64) as usize].into(),
        seed: 1000 + i,
        execs: 120,
        shards: 1,
        sync_every: 30,
        exec_mode: pdf_core::ExecMode::Full,
        deadline_ms: None,
        idempotency_key: None,
    }
}

/// Deterministic meddling RNG (splitmix-style); the interleaving is
/// random-looking but reproducible for a given seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn soak_two_hundred_campaigns_with_meddling() {
    let dir = tmpdir("soak");
    let daemon = Arc::new(Daemon::open(DaemonConfig::persistent(WORKERS, &dir)).unwrap());
    let mut server = Server::start(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Submit the whole burst over several connections, round-robin.
    let mut submitters: Vec<ServeClient> = (0..4)
        .map(|_| ServeClient::connect(&addr).unwrap())
        .collect();
    let mut ids: Vec<u64> = Vec::new();
    for i in 0..CAMPAIGNS {
        let client = &mut submitters[(i % 4) as usize];
        ids.push(client.submit(&spec_for(i)).unwrap());
    }
    assert_eq!(ids.len(), CAMPAIGNS as usize);

    // Meddle from two concurrent connections while the pool churns:
    // random pause / resume / cancel requests against random campaigns.
    // Illegal transitions are expected (the campaign may have finished
    // first) — they must come back as clean wire errors, never wedge a
    // connection or the daemon.
    let meddlers: Vec<std::thread::JoinHandle<u64>> = (0..2u64)
        .map(|m| {
            let addr = addr.clone();
            let ids = ids.clone();
            std::thread::spawn(move || {
                let mut rng = Lcg(0x9e3779b97f4a7c15 ^ m);
                let mut client = ServeClient::connect(&addr).unwrap();
                let mut requests = 0u64;
                for _ in 0..300 {
                    let id = ids[rng.below(ids.len() as u64) as usize];
                    let r = match rng.below(10) {
                        0..=3 => client.pause(id),
                        4..=7 => client.resume(id),
                        8 => client.cancel(id),
                        _ => client.status(id).map(|s| s.phase.to_string()),
                    };
                    match r {
                        Ok(_) | Err(pdf_serve::ClientError::Server { .. }) => requests += 1,
                        Err(e) => panic!("meddler {m} transport failure: {e}"),
                    }
                    if rng.below(3) == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                requests
            })
        })
        .collect();
    for h in meddlers {
        assert_eq!(h.join().expect("meddler panicked"), 300);
    }

    // Drain: keep resuming whatever the meddlers left paused until
    // every campaign is terminal.
    let mut control = ServeClient::connect(&addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let all = control.list().unwrap();
        assert_eq!(all.len(), CAMPAIGNS as usize);
        let open: Vec<_> = all.iter().filter(|s| !s.phase.is_terminal()).collect();
        if open.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{} campaigns still open after drain deadline",
            open.len()
        );
        for s in open {
            if s.phase == Phase::Paused {
                let _ = control.resume(s.id);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Every campaign terminal; completed ones digest-identical to a
    // serial in-process baseline of the same spec.
    let final_states = control.list().unwrap();
    let mut done = 0u64;
    let mut cancelled = 0u64;
    let mut baselines: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, id) in ids.iter().enumerate() {
        let status = final_states.iter().find(|s| s.id == *id).unwrap();
        assert!(status.phase.is_terminal());
        match status.phase {
            Phase::Done => {
                done += 1;
                let spec = spec_for(i as u64);
                let digest = *baselines.entry(i as u64).or_insert_with(|| {
                    let info = pdf_subjects::by_name(&spec.subject).unwrap();
                    Fleet::new(info.subject, fleet_config(&spec))
                        .unwrap()
                        .run()
                        .digest()
                });
                assert_eq!(
                    status.digest,
                    Some(digest),
                    "campaign {id} ({}/{}) diverged from serial baseline",
                    spec.subject,
                    spec.seed
                );
            }
            Phase::Cancelled => cancelled += 1,
            other => panic!("campaign {id} ended {other:?}"),
        }
    }
    // The meddlers' cancel rate is low; most of the burst must complete.
    assert!(done >= CAMPAIGNS / 2, "only {done} campaigns completed");
    eprintln!(
        "soak: {done} done, {cancelled} cancelled, {} baselines checked",
        baselines.len()
    );

    // Every pool slot is back and nothing is left schedulable.
    assert_eq!(daemon.busy_slots(), 0);
    assert_eq!(daemon.active_len(), 0);

    server.stop();
    daemon.shutdown();

    // The journal holds a gap-free legal history for every campaign.
    let records = read_journal(&journal_path(&dir)).unwrap();
    let mut phases: BTreeMap<u64, Phase> = BTreeMap::new();
    for r in &records {
        let phase = phases.entry(r.id).or_insert(Phase::Queued);
        assert_eq!(r.from, *phase, "journal gap for {} at seq {}", r.id, r.seq);
        *phase = transition(r.from, r.event).expect("journaled transition is legal");
        assert_eq!(*phase, r.to);
    }
    assert_eq!(phases.len(), CAMPAIGNS as usize);
    assert!(phases.values().all(|p| p.is_terminal()));
    let _ = std::fs::remove_dir_all(&dir);
}

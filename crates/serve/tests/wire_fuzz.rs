//! Wire-robustness fuzz: a few hundred seeded hostile frames — binary
//! garbage, mutated near-valid commands, oversized lines past the
//! 64 KiB cap — thrown at a live server over real sockets. The
//! contract for every frame: the server answers with a clean `err`
//! frame or closes the connection; it never panics, never wedges, and
//! afterwards keeps serving well-formed clients perfectly. Companion
//! client-side tests pin the `MAX_LINE` cap itself.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pdf_serve::{
    read_capped_line, CampaignSpec, Daemon, DaemonConfig, Phase, Response, ServeClient, Server,
    WireError, MAX_LINE,
};

/// Deterministic byte source (splitmix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Near-valid command templates the mutator starts from. None may
/// mutate into `shutdown` (no template shares its prefix), and the
/// submit lines name subjects that fail validation, so the fuzz loop
/// cannot start real work behind the test's back.
const TEMPLATES: [&str; 8] = [
    "status id=1",
    "pause id=999",
    "resume id=0",
    "cancel id=18446744073709551615",
    "watch id=nope",
    "submit subject=no-such-subject seed=1 execs=10 shards=1 sync=5 mode=full",
    "submit subject= seed= execs=",
    "list extra=field",
];

fn hostile_frame(rng: &mut Lcg) -> Vec<u8> {
    match rng.below(4) {
        // Raw binary garbage, newline-terminated.
        0 => {
            let len = rng.below(200) as usize;
            let mut f: Vec<u8> = (0..len)
                .map(|_| {
                    let b = (rng.next() & 0xff) as u8;
                    if b == b'\n' {
                        0xfe
                    } else {
                        b
                    }
                })
                .collect();
            f.push(b'\n');
            f
        }
        // A template with a few byte flips.
        1 => {
            let mut f = TEMPLATES[rng.below(TEMPLATES.len() as u64) as usize]
                .as_bytes()
                .to_vec();
            for _ in 0..=rng.below(3) {
                let i = rng.below(f.len() as u64) as usize;
                f[i] = (rng.next() & 0x7f) as u8;
                if f[i] == b'\n' {
                    f[i] = b'?';
                }
            }
            f.push(b'\n');
            f
        }
        // A truncated template (torn frame, then the newline).
        2 => {
            let t = TEMPLATES[rng.below(TEMPLATES.len() as u64) as usize].as_bytes();
            let cut = 1 + rng.below(t.len() as u64 - 1) as usize;
            let mut f = t[..cut].to_vec();
            f.push(b'\n');
            f
        }
        // An empty or whitespace-only line.
        _ => b"   \n".to_vec(),
    }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut greeting = String::new();
    reader.read_line(&mut greeting).unwrap();
    assert!(
        greeting.starts_with("pdf-wire"),
        "bad greeting {greeting:?}"
    );
    (stream, reader)
}

#[test]
fn hundreds_of_hostile_frames_never_wedge_the_server() {
    let daemon = Arc::new(Daemon::open(DaemonConfig::in_memory(2)).unwrap());
    let mut server = Server::start(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let mut rng = Lcg(0xF022_5EED);
    let (mut stream, mut reader) = connect(&addr);
    let mut err_frames = 0u64;
    let mut closes = 0u64;
    for _ in 0..400 {
        let frame = hostile_frame(&mut rng);
        if stream.write_all(&frame).is_err() {
            // The server already closed on an earlier frame; re-dial.
            closes += 1;
            (stream, reader) = connect(&addr);
            continue;
        }
        // The probe: a well-formed ping after the hostile frame. The
        // server must reach it (answering `ok`) or have closed the
        // connection cleanly — anything else (a hang, a panic, a
        // mangled frame) fails here.
        if stream.write_all(b"ping\n").is_err() {
            closes += 1;
            (stream, reader) = connect(&addr);
            continue;
        }
        loop {
            match Response::read(&mut reader) {
                Ok(Response::Ok(_)) => break, // the ping's answer
                Ok(Response::Err { .. }) => err_frames += 1,
                // item/end/blob: a mutation landed on a valid command.
                Ok(_) => {}
                Err(WireError::UnexpectedEof) => {
                    closes += 1;
                    (stream, reader) = connect(&addr);
                    break;
                }
                Err(e) => panic!("server wedged or broke framing: {e}"),
            }
        }
    }
    eprintln!("wire fuzz: {err_frames} err frames, {closes} clean closes");

    // An oversized line (past the 64 KiB cap) must be shed without
    // buffering it all, then the connection dropped.
    let (mut stream, mut reader) = connect(&addr);
    let big = vec![b'a'; MAX_LINE + 4096];
    // The server may close mid-write; either way no panic and no hang.
    let _ = stream.write_all(&big);
    let _ = stream.write_all(b"\n");
    let mut rest = String::new();
    let got = reader.read_to_string(&mut rest);
    assert!(
        got.is_err() || rest.starts_with("err") || rest.is_empty(),
        "oversized line was not rejected: {rest:?}"
    );

    // After all of it, the daemon still does real work end to end.
    let mut client = ServeClient::connect(&addr).unwrap();
    client.ping().unwrap();
    let id = client.submit(&CampaignSpec::new("arith", 5, 60)).unwrap();
    let done = client.wait_terminal(id, Duration::from_secs(60)).unwrap();
    assert_eq!(done.phase, Phase::Done);
    assert_eq!(daemon.busy_slots(), 0);

    server.stop();
    daemon.shutdown();
}

#[test]
fn read_capped_line_enforces_the_cap_and_rejects_torn_frames() {
    // At the cap: fine.
    let exact = format!("{}\n", "x".repeat(MAX_LINE - 1));
    let mut r = BufReader::new(exact.as_bytes());
    assert_eq!(read_capped_line(&mut r).unwrap().len(), MAX_LINE);

    // One past the cap: rejected with the oversize error, not truncated.
    let over = format!("{}\n", "x".repeat(MAX_LINE + 1));
    let mut r = BufReader::new(over.as_bytes());
    assert!(matches!(
        read_capped_line(&mut r),
        Err(WireError::TooLong(_))
    ));

    // Oversized with no newline at all (slowloris-style): also rejected
    // without waiting for a terminator that never comes.
    let endless = "y".repeat(MAX_LINE + 4096);
    let mut r = BufReader::new(endless.as_bytes());
    assert!(matches!(
        read_capped_line(&mut r),
        Err(WireError::TooLong(_))
    ));

    // A torn frame — bytes then EOF, no newline — is a dirty EOF, not
    // a parseable line.
    let mut r = BufReader::new(&b"ok id="[..]);
    assert!(matches!(
        read_capped_line(&mut r),
        Err(WireError::UnexpectedEof)
    ));

    // Non-UTF-8 is a framing error, not a panic.
    let mut r = BufReader::new(&[0xff, 0xfe, 0x41, b'\n'][..]);
    assert!(matches!(
        read_capped_line(&mut r),
        Err(WireError::BadResponse(_))
    ));
}

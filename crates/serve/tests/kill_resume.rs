//! Kill/resume integration test: hard-stop the daemon mid-epoch (the
//! simulated SIGKILL — the in-flight slice is abandoned, nothing is
//! flushed), restart from the state directory, and require the final
//! reports to be digest-identical to uninterrupted runs — including
//! after several kill cycles in a row — with a fully legal journaled
//! history for every campaign.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pdf_fleet::Fleet;
use pdf_serve::{
    fleet_config, journal_path, read_journal, transition, CampaignSpec, Daemon, DaemonConfig,
    Event, Phase,
};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(subject: &str, seed: u64) -> CampaignSpec {
    CampaignSpec {
        subject: subject.into(),
        seed,
        execs: 1_200,
        shards: 2,
        sync_every: 50,
        exec_mode: pdf_core::ExecMode::Full,
        deadline_ms: None,
        idempotency_key: None,
    }
}

fn baseline(spec: &CampaignSpec) -> pdf_fleet::FleetReport {
    let info = pdf_subjects::by_name(&spec.subject).unwrap();
    Fleet::new(info.subject, fleet_config(spec)).unwrap().run()
}

#[test]
fn hard_kill_mid_epoch_then_restart_is_digest_identical() {
    let dir = tmpdir("kill-resume");
    let specs = [spec("arith", 11), spec("dyck", 12), spec("csv", 13)];
    let baselines: Vec<pdf_fleet::FleetReport> = specs.iter().map(baseline).collect();

    // Phase 1: submit everything, let the pool make real progress, then
    // yank the power cord mid-epoch.
    let ids: Vec<u64> = {
        let daemon = Daemon::open(DaemonConfig::persistent(2, &dir)).unwrap();
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| daemon.submit(s.clone()).unwrap())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            let progressed = ids
                .iter()
                .filter(|&&id| daemon.status(id).unwrap().epoch >= 1)
                .count();
            if progressed >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // At least one campaign must still be mid-flight for the kill
        // to interrupt anything.
        assert!(
            ids.iter()
                .any(|&id| !daemon.status(id).unwrap().phase.is_terminal()),
            "campaigns finished before the kill; grow the execs budget"
        );
        daemon.hard_stop();
        ids
    };

    // Phase 2: two more kill cycles — restart, run a little, kill again.
    for cycle in 0..2u32 {
        let daemon = Daemon::open(DaemonConfig::persistent(2, &dir)).unwrap();
        std::thread::sleep(Duration::from_millis(20 + 30 * u64::from(cycle)));
        daemon.hard_stop();
    }

    // Phase 3: final restart runs everything to completion.
    let daemon = Daemon::open(DaemonConfig::persistent(2, &dir)).unwrap();
    assert!(daemon.wait_idle(Duration::from_secs(120)), "daemon wedged");
    for (id, base) in ids.iter().zip(&baselines) {
        let status = daemon.status(*id).unwrap();
        assert_eq!(status.phase, Phase::Done, "campaign {id} not done");
        assert_eq!(
            status.digest,
            Some(base.digest()),
            "campaign {id} diverged from its uninterrupted run"
        );
        assert_eq!(status.coverage, Some(base.coverage_digest()));
        assert_eq!(status.spent, base.total_execs);
    }
    assert_eq!(daemon.busy_slots(), 0);
    daemon.shutdown();

    // The journal must hold a legal, gap-free history per campaign,
    // the requeue edges from the kills, and the baseline digests on
    // the finish records.
    let records = read_journal(&journal_path(&dir)).unwrap();
    assert!(
        records.iter().any(|r| r.event == Event::Requeue),
        "kill cycles left no requeue edge in the journal"
    );
    for (id, base) in ids.iter().zip(&baselines) {
        let mut phase = Phase::Queued;
        for r in records.iter().filter(|r| r.id == *id) {
            assert_eq!(r.from, phase, "journal gap for {id} at seq {}", r.seq);
            phase = transition(r.from, r.event).expect("journaled transition is legal");
            assert_eq!(phase, r.to);
            if r.event == Event::Finish {
                assert_eq!(r.digest, Some(base.digest()));
            }
        }
        assert_eq!(phase, Phase::Done);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn paused_campaign_survives_restart_paused() {
    let dir = tmpdir("kill-paused");
    let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
    // With a single worker, b waits queued behind a and can be paused
    // before it ever dispatches.
    let a = daemon.submit(spec("arith", 21)).unwrap();
    let b = daemon.submit(spec("dyck", 22)).unwrap();
    daemon.pause(b).unwrap();
    daemon.hard_stop();
    drop(daemon);

    let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    while !daemon.status(a).unwrap().phase.is_terminal() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(daemon.status(a).unwrap().phase, Phase::Done);
    // b held its pause across the restart and never consumed budget
    // while paused.
    assert_eq!(daemon.status(b).unwrap().phase, Phase::Paused);
    daemon.resume(b).unwrap();
    assert!(daemon.wait_idle(Duration::from_secs(120)));
    let status = daemon.status(b).unwrap();
    assert_eq!(status.phase, Phase::Done);
    assert_eq!(status.digest, Some(baseline(&spec("dyck", 22)).digest()));
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! A blocking `pdf-wire v1` client, used by `servecli`, `loadgen`,
//! `evalrunner --submit` and the serve test-suite.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::{
    read_capped_line, status_from_fields, CampaignSpec, CampaignStatus, Request, Response,
    WireError, WIRE_HEADER,
};

/// A client-side protocol or transport failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The server spoke something other than `pdf-wire v1`.
    Protocol(WireError),
    /// The server answered with an `err` frame.
    Server {
        /// The machine-readable error code.
        code: String,
        /// The human-readable message.
        msg: String,
    },
    /// The server answered with an unexpected frame kind.
    Unexpected(String),
    /// A wait ran out of time.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// One connection to a `pdf-serve` daemon.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn get<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, ClientError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| ClientError::Unexpected(format!("response missing {key:?}")))
}

impl ServeClient {
    /// Connects to `addr` and verifies the server's greeting.
    ///
    /// # Errors
    ///
    /// Transport errors, or a greeting that is not [`WIRE_HEADER`].
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let greeting = read_capped_line(&mut reader)?;
        if greeting.trim_end() != WIRE_HEADER {
            return Err(ClientError::Unexpected(format!(
                "greeting {:?}, want {WIRE_HEADER:?}",
                greeting.trim_end()
            )));
        }
        Ok(ServeClient { reader, writer })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        writeln!(self.writer, "{}", req.encode())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match Response::read(&mut self.reader)? {
            Response::Err { code, msg } => Err(ClientError::Server { code, msg }),
            other => Ok(other),
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<Vec<(String, String)>, ClientError> {
        match self.roundtrip(req)? {
            Response::Ok(fields) => Ok(fields),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submits a campaign; returns its daemon-assigned id.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `Server` with code `bad-spec`,
    /// `unknown-subject` or `stopping` on refused submissions.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<u64, ClientError> {
        let fields = self.expect_ok(&Request::Submit(spec.clone()))?;
        get(&fields, "id")?
            .parse()
            .map_err(|_| ClientError::Unexpected("non-numeric id".into()))
    }

    /// Fetches one campaign's status.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `Server` with code `no-such-campaign` for
    /// unknown ids.
    pub fn status(&mut self, id: u64) -> Result<CampaignStatus, ClientError> {
        let fields = self.expect_ok(&Request::Status { id })?;
        Ok(status_from_fields(&fields)?)
    }

    fn phase_request(&mut self, req: Request) -> Result<String, ClientError> {
        let fields = self.expect_ok(&req)?;
        Ok(get(&fields, "state")?.to_string())
    }

    /// Requests a pause; returns the phase after the request (still
    /// `running` when the pause is pending a slice boundary).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `illegal-transition` when not pausable.
    pub fn pause(&mut self, id: u64) -> Result<String, ClientError> {
        self.phase_request(Request::Pause { id })
    }

    /// Resumes a paused campaign.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `illegal-transition` when not resumable.
    pub fn resume(&mut self, id: u64) -> Result<String, ClientError> {
        self.phase_request(Request::Resume { id })
    }

    /// Requests cancellation.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `illegal-transition` when already terminal.
    pub fn cancel(&mut self, id: u64) -> Result<String, ClientError> {
        self.phase_request(Request::Cancel { id })
    }

    /// Lists every campaign the daemon knows.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn list(&mut self) -> Result<Vec<CampaignStatus>, ClientError> {
        writeln!(self.writer, "{}", Request::List.encode())?;
        self.writer.flush()?;
        let mut out = Vec::new();
        loop {
            match self.read_response()? {
                Response::Item(fields) => out.push(status_from_fields(&fields)?),
                Response::End(_) => return Ok(out),
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Streams progress ticks for campaign `id`, invoking `tick` for
    /// each update, until the campaign is terminal; returns the final
    /// status.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn watch(
        &mut self,
        id: u64,
        mut tick: impl FnMut(&CampaignStatus),
    ) -> Result<CampaignStatus, ClientError> {
        writeln!(self.writer, "{}", Request::Watch { id }.encode())?;
        self.writer.flush()?;
        loop {
            match self.read_response()? {
                Response::Item(fields) => tick(&status_from_fields(&fields)?),
                Response::End(fields) => return Ok(status_from_fields(&fields)?),
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Fetches the daemon's `pdf-metrics v1` snapshot text.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Blob(lines) => Ok(lines.join("\n") + "\n"),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ping).map(|_| ())
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown).map(|_| ())
    }

    /// Polls `status` until campaign `id` reaches a terminal phase or
    /// `timeout` elapses; returns the terminal status.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] on expiry, otherwise any
    /// [`ClientError`] from the polling.
    pub fn wait_terminal(
        &mut self,
        id: u64,
        timeout: Duration,
    ) -> Result<CampaignStatus, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.phase.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

//! A blocking `pdf-wire v1` client, used by `servecli`, `loadgen`,
//! `evalrunner --submit` and the serve test-suite.
//!
//! [`ServeClient`] is the raw single-connection client: any transport
//! hiccup is the caller's problem. [`RetryClient`] wraps it with the
//! fault-model contract: jittered-exponential reconnect on transport
//! errors, honoring the server's `retry-after-ms` hint on `overloaded`
//! sheds, and deterministic idempotency keys on submit so a retried
//! submission can never fork a duplicate campaign.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use pdf_chaos::Backoff;

use crate::wire::{
    read_capped_line, status_from_fields, CampaignSpec, CampaignStatus, Request, Response,
    WireError, WIRE_HEADER,
};

/// A client-side protocol or transport failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The server spoke something other than `pdf-wire v1`.
    Protocol(WireError),
    /// The server answered with an `err` frame.
    Server {
        /// The machine-readable error code.
        code: String,
        /// The server's retry hint (present on `overloaded`).
        retry_after_ms: Option<u64>,
        /// The human-readable message.
        msg: String,
    },
    /// The server answered with an unexpected frame kind.
    Unexpected(String),
    /// A wait ran out of time.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, msg, .. } => write!(f, "server error [{code}]: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// One connection to a `pdf-serve` daemon.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn get<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, ClientError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| ClientError::Unexpected(format!("response missing {key:?}")))
}

impl ServeClient {
    /// Connects to `addr` and verifies the server's greeting.
    ///
    /// # Errors
    ///
    /// Transport errors, or a greeting that is not [`WIRE_HEADER`].
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // One request per line and every frame waited on: Nagle +
        // delayed ACK would add ~40ms per round trip on loopback.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let greeting = read_capped_line(&mut reader)?;
        if greeting.trim_end() != WIRE_HEADER {
            return Err(ClientError::Unexpected(format!(
                "greeting {:?}, want {WIRE_HEADER:?}",
                greeting.trim_end()
            )));
        }
        Ok(ServeClient { reader, writer })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        writeln!(self.writer, "{}", req.encode())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match Response::read(&mut self.reader)? {
            Response::Err {
                code,
                retry_after_ms,
                msg,
            } => Err(ClientError::Server {
                code,
                retry_after_ms,
                msg,
            }),
            other => Ok(other),
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<Vec<(String, String)>, ClientError> {
        match self.roundtrip(req)? {
            Response::Ok(fields) => Ok(fields),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submits a campaign; returns its daemon-assigned id.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `Server` with code `bad-spec`,
    /// `unknown-subject` or `stopping` on refused submissions.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<u64, ClientError> {
        let fields = self.expect_ok(&Request::Submit(spec.clone()))?;
        get(&fields, "id")?
            .parse()
            .map_err(|_| ClientError::Unexpected("non-numeric id".into()))
    }

    /// Fetches one campaign's status.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `Server` with code `no-such-campaign` for
    /// unknown ids.
    pub fn status(&mut self, id: u64) -> Result<CampaignStatus, ClientError> {
        let fields = self.expect_ok(&Request::Status { id })?;
        Ok(status_from_fields(&fields)?)
    }

    fn phase_request(&mut self, req: Request) -> Result<String, ClientError> {
        let fields = self.expect_ok(&req)?;
        Ok(get(&fields, "state")?.to_string())
    }

    /// Requests a pause; returns the phase after the request (still
    /// `running` when the pause is pending a slice boundary).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `illegal-transition` when not pausable.
    pub fn pause(&mut self, id: u64) -> Result<String, ClientError> {
        self.phase_request(Request::Pause { id })
    }

    /// Resumes a paused campaign.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `illegal-transition` when not resumable.
    pub fn resume(&mut self, id: u64) -> Result<String, ClientError> {
        self.phase_request(Request::Resume { id })
    }

    /// Requests cancellation.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `illegal-transition` when already terminal.
    pub fn cancel(&mut self, id: u64) -> Result<String, ClientError> {
        self.phase_request(Request::Cancel { id })
    }

    /// Lists every campaign the daemon knows.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn list(&mut self) -> Result<Vec<CampaignStatus>, ClientError> {
        writeln!(self.writer, "{}", Request::List.encode())?;
        self.writer.flush()?;
        let mut out = Vec::new();
        loop {
            match self.read_response()? {
                Response::Item(fields) => out.push(status_from_fields(&fields)?),
                Response::End(_) => return Ok(out),
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Streams progress ticks for campaign `id`, invoking `tick` for
    /// each update, until the campaign is terminal; returns the final
    /// status.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn watch(
        &mut self,
        id: u64,
        mut tick: impl FnMut(&CampaignStatus),
    ) -> Result<CampaignStatus, ClientError> {
        writeln!(self.writer, "{}", Request::Watch { id }.encode())?;
        self.writer.flush()?;
        loop {
            match self.read_response()? {
                Response::Item(fields) => tick(&status_from_fields(&fields)?),
                Response::End(fields) => return Ok(status_from_fields(&fields)?),
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Fetches the daemon's `pdf-metrics v1` snapshot text.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Blob(lines) => Ok(lines.join("\n") + "\n"),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ping).map(|_| ())
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown).map(|_| ())
    }

    /// Polls `status` until campaign `id` reaches a terminal phase or
    /// `timeout` elapses; returns the terminal status.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] on expiry, otherwise any
    /// [`ClientError`] from the polling.
    pub fn wait_terminal(
        &mut self,
        id: u64,
        timeout: Duration,
    ) -> Result<CampaignStatus, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.phase.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Retry knobs for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First backoff window.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// How many *failed* attempts before giving up (total tries =
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// Jitter seed; the whole retry schedule is a pure function of it.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            max_retries: 8,
            seed: 0x7e7e_7e7e,
        }
    }
}

/// Whether this failure is worth a reconnect-and-retry: transport
/// deaths and mid-frame drops are; coherent server refusals (bad spec,
/// unknown subject, illegal transition) are not. `overloaded` and
/// `timeout` server codes are retryable — the server itself asked the
/// client to come back.
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) => true,
        ClientError::Protocol(WireError::UnexpectedEof | WireError::Timeout) => true,
        ClientError::Protocol(WireError::BadResponse(msg)) => msg.starts_with("io: "),
        ClientError::Server { code, .. } => code == "overloaded" || code == "timeout",
        _ => false,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A self-healing client: lazily connects, reconnects with seeded
/// jittered-exponential backoff on transport failure, and honors the
/// server's `retry-after-ms` shed hints. See the [module docs](self).
#[derive(Debug)]
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    inner: Option<ServeClient>,
    /// Total reconnect/retry sleeps performed (introspection for tests
    /// and CLI diagnostics).
    retries: u64,
    /// How many of those retries were server shed hints
    /// (`err code=overloaded retry-after-ms=N`) rather than transport
    /// failures.
    sheds: u64,
}

impl RetryClient {
    /// A client for `addr` with the default [`RetryPolicy`]. Does not
    /// connect yet; the first call does (with retries).
    pub fn new(addr: &str) -> RetryClient {
        RetryClient::with_policy(addr, RetryPolicy::default())
    }

    /// A client with explicit retry knobs.
    pub fn with_policy(addr: &str, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            policy,
            inner: None,
            retries: 0,
            sheds: 0,
        }
    }

    /// How many retry sleeps this client has performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// How many retries were load-shed hints from the server (a subset
    /// of [`retries`](Self::retries)).
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Runs `f` against a connected [`ServeClient`], reconnecting and
    /// retrying per the policy. The retry loop:
    ///
    /// - transport failure → drop the connection, sleep the next
    ///   backoff window, reconnect, re-run `f`;
    /// - `err code=overloaded retry-after-ms=N` → sleep the *larger* of
    ///   `N` and the backoff window, re-run `f`;
    /// - any other server refusal → return it immediately (retrying a
    ///   `bad-spec` will never make it good);
    /// - `max_retries` failures → return the last error.
    ///
    /// **Retried operations must be idempotent.** [`submit`](Self::submit)
    /// makes itself so via idempotency keys; status/list/watch/ping are
    /// naturally so.
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once retries are exhausted, or the
    /// first non-retryable one.
    pub fn with_client<T>(
        &mut self,
        mut f: impl FnMut(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut backoff = Backoff::new(self.policy.base, self.policy.cap, self.policy.seed);
        loop {
            let attempt = (|| -> Result<T, ClientError> {
                if self.inner.is_none() {
                    self.inner = Some(ServeClient::connect(&self.addr)?);
                }
                f(self.inner.as_mut().expect("just connected"))
            })();
            match attempt {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if !retryable(&e) || backoff.attempts() >= self.policy.max_retries {
                        return Err(e);
                    }
                    let hinted = match &e {
                        ClientError::Server {
                            retry_after_ms: Some(ms),
                            ..
                        } => {
                            self.sheds += 1;
                            Some(Duration::from_millis(*ms))
                        }
                        _ => {
                            // Transport error: the connection is suspect.
                            self.inner = None;
                            None
                        }
                    };
                    let delay = backoff.next_delay().max(hinted.unwrap_or(Duration::ZERO));
                    self.retries += 1;
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// Submits a campaign, retrying safely: when the spec carries no
    /// idempotency key, a deterministic one is derived from the spec
    /// and the policy seed, so a resubmission after a lost reply
    /// returns the original campaign id instead of forking a
    /// duplicate.
    ///
    /// # Errors
    ///
    /// As [`with_client`](Self::with_client).
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<u64, ClientError> {
        let mut spec = spec.clone();
        if spec.idempotency_key.is_none() {
            let line = Request::Submit(spec.clone()).encode();
            spec.idempotency_key = Some(format!(
                "auto-{:016x}",
                fnv1a(self.policy.seed, line.as_bytes())
            ));
        }
        self.with_client(|c| c.submit(&spec))
    }

    /// Fetches one campaign's status, with retries.
    ///
    /// # Errors
    ///
    /// As [`with_client`](Self::with_client).
    pub fn status(&mut self, id: u64) -> Result<CampaignStatus, ClientError> {
        self.with_client(|c| c.status(id))
    }

    /// Liveness probe, with retries.
    ///
    /// # Errors
    ///
    /// As [`with_client`](Self::with_client).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_client(|c| c.ping())
    }

    /// Fetches the daemon's metrics snapshot, with retries.
    ///
    /// # Errors
    ///
    /// As [`with_client`](Self::with_client).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.with_client(|c| c.metrics())
    }

    /// Streams progress ticks like [`ServeClient::watch`], but
    /// reconnects and re-issues the watch when the stream drops
    /// mid-campaign (ticks may repeat across a reconnect; the final
    /// status never does).
    ///
    /// # Errors
    ///
    /// As [`with_client`](Self::with_client).
    pub fn watch(
        &mut self,
        id: u64,
        mut tick: impl FnMut(&CampaignStatus),
    ) -> Result<CampaignStatus, ClientError> {
        self.with_client(|c| c.watch(id, &mut tick))
    }

    /// Polls until campaign `id` is terminal or `timeout` elapses,
    /// reconnecting through transport failures.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] on expiry, otherwise as
    /// [`with_client`](Self::with_client).
    pub fn wait_terminal(
        &mut self,
        id: u64,
        timeout: Duration,
    ) -> Result<CampaignStatus, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.phase.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

//! `pdfserved` — run the fuzzing-as-a-service daemon.
//!
//! ```text
//! pdfserved --listen 127.0.0.1:7700 --workers 4 --state-dir /var/lib/pdf-serve
//! ```
//!
//! Prints the bound address (useful with `--listen 127.0.0.1:0`) and
//! serves until a wire `shutdown` command arrives. With `--state-dir`,
//! restarting the daemon on the same directory resumes every
//! in-flight campaign digest-identically.

use std::sync::Arc;
use std::time::Duration;

use pdf_serve::{Daemon, DaemonConfig, Server, ServerConfig};

fn string_arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn numeric_arg(args: &[String], name: &str, default: u64) -> u64 {
    match string_arg(args, name).as_deref() {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: {name} expects a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pdfserved [--listen ADDR] [--workers N] [--state-dir DIR]\n\
             \x20                [--max-queued N] [--max-conns N] [--read-timeout-ms N]\n\
             defaults: --listen 127.0.0.1:7700, --workers 4, in-memory state,\n\
             \x20         unlimited queue, --max-conns 64, --read-timeout-ms 30000"
        );
        return;
    }
    // Reject unknown flags instead of silently serving on the defaults
    // (a typo'd `--addr` must not leave a daemon listening elsewhere).
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" | "--workers" | "--state-dir" | "--max-queued" | "--max-conns"
            | "--read-timeout-ms" => i += 2,
            other => {
                eprintln!("error: unknown argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let listen = string_arg(&args, "--listen").unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let workers = numeric_arg(&args, "--workers", 4) as usize;
    let mut cfg = match string_arg(&args, "--state-dir") {
        Some(dir) => DaemonConfig::persistent(workers, dir),
        None => DaemonConfig::in_memory(workers),
    };
    if string_arg(&args, "--max-queued").is_some() {
        cfg = cfg.with_max_queued(numeric_arg(&args, "--max-queued", 1) as usize);
    }
    let server_cfg = ServerConfig {
        read_timeout: Some(Duration::from_millis(numeric_arg(
            &args,
            "--read-timeout-ms",
            30_000,
        ))),
        max_conns: numeric_arg(&args, "--max-conns", 64) as usize,
        faults: None,
    };
    let daemon = match Daemon::open(cfg) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            eprintln!("error: cannot open daemon: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match Server::start_with(Arc::clone(&daemon), &listen, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!("pdfserved listening on {}", server.local_addr());
    server.wait_shutdown();
    server.stop();
    daemon.shutdown();
    println!("pdfserved stopped");
}

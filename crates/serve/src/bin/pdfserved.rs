//! `pdfserved` — run the fuzzing-as-a-service daemon.
//!
//! ```text
//! pdfserved --listen 127.0.0.1:7700 --workers 4 --state-dir /var/lib/pdf-serve
//! ```
//!
//! Prints the bound address (useful with `--listen 127.0.0.1:0`) and
//! serves until a wire `shutdown` command arrives. With `--state-dir`,
//! restarting the daemon on the same directory resumes every
//! in-flight campaign digest-identically.

use std::sync::Arc;

use pdf_serve::{Daemon, DaemonConfig, Server};

fn string_arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pdfserved [--listen ADDR] [--workers N] [--state-dir DIR]\n\
             defaults: --listen 127.0.0.1:7700, --workers 4, in-memory state"
        );
        return;
    }
    // Reject unknown flags instead of silently serving on the defaults
    // (a typo'd `--addr` must not leave a daemon listening elsewhere).
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" | "--workers" | "--state-dir" => i += 2,
            other => {
                eprintln!("error: unknown argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let listen = string_arg(&args, "--listen").unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let workers: usize = match string_arg(&args, "--workers").as_deref() {
        None => 4,
        Some(raw) => match raw.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --workers expects a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        },
    };
    let cfg = match string_arg(&args, "--state-dir") {
        Some(dir) => DaemonConfig::persistent(workers, dir),
        None => DaemonConfig::in_memory(workers),
    };
    let daemon = match Daemon::open(cfg) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            eprintln!("error: cannot open daemon: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match Server::start(Arc::clone(&daemon), &listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!("pdfserved listening on {}", server.local_addr());
    server.wait_shutdown();
    server.stop();
    daemon.shutdown();
    println!("pdfserved stopped");
}

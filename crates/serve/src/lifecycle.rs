//! The campaign lifecycle state machine.
//!
//! Every campaign the daemon manages is in exactly one [`Phase`];
//! phases change only through [`transition`], which admits exactly the
//! edges of [`LEGAL_TRANSITIONS`] and rejects everything else with an
//! [`IllegalTransition`]. The daemon journals every accepted transition
//! (see [`journal`](crate::journal)), so the full lifecycle history of
//! every campaign is reconstructible from the state directory.
//!
//! The diagram (ISSUE 7 / DESIGN.md §13):
//!
//! ```text
//!            Dispatch              Pause
//!   Queued ───────────▶ Running ──────────▶ Paused
//!     │ ▲ Requeue          │ ◀──────────────── │
//!     │ └───────────────── │      Resume       │
//!     │    Pause ▲         │ Finish / Fail     │
//!     ├──────────┘         ▼                   │
//!     │              Done / Failed             │
//!     └──────▶ Cancelled ◀─────────────────────┘
//!                  (Cancel, from any non-terminal phase)
//! ```
//!
//! `Running` means *admitted to the worker pool* — the campaign is
//! either on a worker right now or waiting for its next epoch slice;
//! slot occupancy is scheduler bookkeeping, not lifecycle state.
//! `Requeue` is the restart-recovery edge: a campaign whose persisted
//! phase is `Running` when the daemon comes back up is requeued, since
//! whatever worker held it is gone.

use std::fmt;

/// The lifecycle phase of a daemon campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Accepted, never yet admitted to the worker pool.
    Queued,
    /// Admitted: on a worker or awaiting its next epoch slice.
    Running,
    /// Explicitly paused; checkpointed, waiting for `resume`.
    Paused,
    /// Terminal: budget spent, final report digested.
    Done,
    /// Terminal: an epoch slice or checkpoint failed.
    Failed,
    /// Terminal: cancelled by request.
    Cancelled,
}

/// An event applied to a campaign's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A worker admitted the campaign to the pool for its first slice.
    Dispatch,
    /// A pause request took effect (at a slice boundary, or immediately
    /// for a campaign not on a worker).
    Pause,
    /// A resume request re-admitted a paused campaign.
    Resume,
    /// The campaign finished its budget; the final report is digested.
    Finish,
    /// An epoch slice or checkpoint failed.
    Fail,
    /// A cancel request took effect.
    Cancel,
    /// Restart recovery: the daemon came back up and requeued a
    /// campaign whose persisted phase was still `Running`.
    Requeue,
}

/// Every legal `(from, event, to)` edge — the single source of truth
/// the [`transition`] function, the property tests and the DESIGN.md
/// table all derive from.
pub const LEGAL_TRANSITIONS: [(Phase, Event, Phase); 10] = [
    (Phase::Queued, Event::Dispatch, Phase::Running),
    (Phase::Queued, Event::Pause, Phase::Paused),
    (Phase::Queued, Event::Cancel, Phase::Cancelled),
    (Phase::Running, Event::Pause, Phase::Paused),
    (Phase::Running, Event::Finish, Phase::Done),
    (Phase::Running, Event::Fail, Phase::Failed),
    (Phase::Running, Event::Cancel, Phase::Cancelled),
    (Phase::Running, Event::Requeue, Phase::Queued),
    (Phase::Paused, Event::Resume, Phase::Running),
    (Phase::Paused, Event::Cancel, Phase::Cancelled),
];

impl Phase {
    /// All six phases, for exhaustive iteration in tests.
    pub const ALL: [Phase; 6] = [
        Phase::Queued,
        Phase::Running,
        Phase::Paused,
        Phase::Done,
        Phase::Failed,
        Phase::Cancelled,
    ];

    /// The wire/journal name of the phase (lowercase).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Paused => "paused",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Cancelled => "cancelled",
        }
    }

    /// Parses a phase name as produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether the phase is terminal (absorbs every event).
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Failed | Phase::Cancelled)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Event {
    /// All seven events, for exhaustive iteration in tests.
    pub const ALL: [Event; 7] = [
        Event::Dispatch,
        Event::Pause,
        Event::Resume,
        Event::Finish,
        Event::Fail,
        Event::Cancel,
        Event::Requeue,
    ];

    /// The journal name of the event (lowercase).
    pub fn name(self) -> &'static str {
        match self {
            Event::Dispatch => "dispatch",
            Event::Pause => "pause",
            Event::Resume => "resume",
            Event::Finish => "finish",
            Event::Fail => "fail",
            Event::Cancel => "cancel",
            Event::Requeue => "requeue",
        }
    }

    /// Parses an event name as produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Event> {
        Event::ALL.into_iter().find(|e| e.name() == s)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An event was applied to a phase with no legal edge for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The phase the campaign was in.
    pub from: Phase,
    /// The event that had no edge from it.
    pub event: Event,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no {} transition from {}", self.event, self.from)
    }
}

impl std::error::Error for IllegalTransition {}

/// Applies `event` to `from`, returning the successor phase.
///
/// # Errors
///
/// [`IllegalTransition`] when [`LEGAL_TRANSITIONS`] has no
/// `(from, event, _)` edge — in particular for every event applied to a
/// terminal phase.
///
/// ```
/// use pdf_serve::{transition, Event, Phase};
///
/// assert_eq!(transition(Phase::Queued, Event::Dispatch), Ok(Phase::Running));
/// assert_eq!(transition(Phase::Running, Event::Pause), Ok(Phase::Paused));
/// assert!(transition(Phase::Done, Event::Resume).is_err());
/// ```
pub fn transition(from: Phase, event: Event) -> Result<Phase, IllegalTransition> {
    LEGAL_TRANSITIONS
        .iter()
        .find(|(f, e, _)| *f == from && *e == event)
        .map(|(_, _, to)| *to)
        .ok_or(IllegalTransition { from, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::parse(p.name()), Some(p));
        }
        for e in Event::ALL {
            assert_eq!(Event::parse(e.name()), Some(e));
        }
        assert_eq!(Phase::parse("nope"), None);
        assert_eq!(Event::parse("nope"), None);
    }

    #[test]
    fn terminal_phases_absorb_everything() {
        for p in Phase::ALL.into_iter().filter(|p| p.is_terminal()) {
            for e in Event::ALL {
                assert_eq!(
                    transition(p, e),
                    Err(IllegalTransition { from: p, event: e })
                );
            }
        }
    }

    #[test]
    fn table_and_function_agree_exhaustively() {
        for from in Phase::ALL {
            for event in Event::ALL {
                let edge = LEGAL_TRANSITIONS
                    .iter()
                    .find(|(f, e, _)| *f == from && *e == event);
                match transition(from, event) {
                    Ok(to) => assert_eq!(edge.map(|(_, _, t)| *t), Some(to)),
                    Err(_) => assert!(edge.is_none()),
                }
            }
        }
    }

    #[test]
    fn issue_diagram_edges_present() {
        assert_eq!(
            transition(Phase::Queued, Event::Dispatch),
            Ok(Phase::Running)
        );
        assert_eq!(transition(Phase::Running, Event::Pause), Ok(Phase::Paused));
        assert_eq!(transition(Phase::Paused, Event::Resume), Ok(Phase::Running));
        assert_eq!(transition(Phase::Running, Event::Finish), Ok(Phase::Done));
        assert_eq!(transition(Phase::Running, Event::Fail), Ok(Phase::Failed));
        for p in [Phase::Queued, Phase::Running, Phase::Paused] {
            assert!(transition(p, Event::Cancel) == Ok(Phase::Cancelled));
        }
    }
}

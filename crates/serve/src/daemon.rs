//! The campaign daemon: a bounded worker pool multiplexing many
//! checkpointable fleet campaigns.
//!
//! A [`Daemon`] owns every campaign ever submitted to it and a pool of
//! `workers` OS threads. Campaigns advance in *slices* of exactly one
//! fleet synchronization epoch: a worker claims the most urgent
//! schedulable campaign (nearest deadline first, then submission
//! order), runs [`Fleet::run_epoch`] once, and returns the campaign to
//! the pool — so a 4-worker daemon makes fair progress on 200 queued
//! campaigns instead of head-of-line blocking on the first 4.
//!
//! # Durability contract
//!
//! With a state directory configured, the disk is brought up to date at
//! **every slice boundary**: the fleet is checkpointed
//! (`campaigns/<id>/ck/`, the `pdf-checkpoint`/`pdf-fleet` codecs), the
//! campaign meta (`campaigns/<id>/meta`, `pdf-serve-meta v1`) is
//! rewritten atomically, and every lifecycle transition is appended to
//! `serve.journal` *before* it takes effect. A hard kill therefore
//! loses at most the epoch in flight — and because an epoch re-run from
//! its checkpoint is deterministic (the fleet contract), a restarted
//! daemon finishes every interrupted campaign with **byte-identical
//! final digests** to an uninterrupted run. [`Daemon::open`] performs
//! the recovery: persisted `Running` campaigns are requeued through the
//! [`Event::Requeue`] edge, `Paused` ones stay paused, terminal ones
//! keep their digests.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pdf_chaos::{chaos_write_file, FaultKind, FaultPlan, OpKind};
use pdf_core::{DriverConfig, ErrorClass};
use pdf_fleet::{Fleet, FleetConfig};
use pdf_obs::{campaign_label, MetricsRegistry};

use crate::journal::{recover_journal, Journal};
use crate::lifecycle::{transition, Event, IllegalTransition, Phase};
use crate::wire::{
    parse_fields, status_fields, status_from_fields, CampaignSpec, CampaignStatus, RESPONSE_KEYS,
};

/// The meta-file header/version line.
pub const META_HEADER: &str = "pdf-serve-meta v1";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker pool size (must be at least 1).
    pub workers: usize,
    /// Where campaigns checkpoint and the journal lives; `None` runs
    /// fully in memory (no durability, no journal).
    pub state_dir: Option<PathBuf>,
    /// Load-shedding threshold: submissions are refused with
    /// [`ServeError::Overloaded`] while this many campaigns are already
    /// queued or running. `None` admits everything.
    pub max_queued: Option<usize>,
    /// Storage fault-injection plan for chaos testing; every journal
    /// append, meta rewrite and checkpoint write consults it. `None`
    /// (production) injects nothing.
    pub faults: Option<Arc<FaultPlan>>,
}

impl DaemonConfig {
    /// An ephemeral daemon: no state directory, nothing survives it.
    pub fn in_memory(workers: usize) -> DaemonConfig {
        DaemonConfig {
            workers,
            state_dir: None,
            max_queued: None,
            faults: None,
        }
    }

    /// A durable daemon rooted at `state_dir`.
    pub fn persistent(workers: usize, state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            workers,
            state_dir: Some(state_dir.into()),
            max_queued: None,
            faults: None,
        }
    }

    /// Caps admission at `max_queued` active campaigns.
    pub fn with_max_queued(mut self, max_queued: usize) -> DaemonConfig {
        self.max_queued = Some(max_queued);
        self
    }

    /// Installs a storage fault-injection plan.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> DaemonConfig {
        self.faults = Some(faults);
        self
    }
}

/// Why a daemon request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No campaign has this id.
    NoSuchCampaign(u64),
    /// The request implies an illegal lifecycle transition.
    Illegal(IllegalTransition),
    /// The spec names a subject the daemon does not have.
    UnknownSubject(String),
    /// The spec failed validation.
    BadSpec(String),
    /// The daemon is shutting down and accepts no new work.
    Stopping,
    /// The admission cap is reached; retry after the given delay.
    Overloaded {
        /// How long the client should back off before resubmitting,
        /// in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoSuchCampaign(id) => write!(f, "campaign {id} does not exist"),
            ServeError::Illegal(t) => write!(f, "{t}"),
            ServeError::UnknownSubject(s) => write!(f, "unknown subject {s:?}"),
            ServeError::BadSpec(what) => write!(f, "bad campaign spec: {what}"),
            ServeError::Stopping => write!(f, "daemon is shutting down"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "daemon is overloaded, retry in {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IllegalTransition> for ServeError {
    fn from(t: IllegalTransition) -> ServeError {
        ServeError::Illegal(t)
    }
}

/// The exact [`FleetConfig`] the daemon runs a spec with. Public so
/// tests (and anyone re-deriving a baseline) can run the identical
/// campaign serially: `spec.execs` is split evenly across shards
/// (at least 1 per shard), worker legs run serially inside the pool
/// slot (`parallel: false` — the pool is the parallelism), and
/// everything else is the driver default.
pub fn fleet_config(spec: &CampaignSpec) -> FleetConfig {
    let per_shard = (spec.execs / spec.shards.max(1)).max(1);
    FleetConfig {
        shards: spec.shards.max(1) as usize,
        sync_every: spec.sync_every,
        base: DriverConfig {
            seed: spec.seed,
            max_execs: per_shard,
            exec_mode: spec.exec_mode,
            ..DriverConfig::default()
        },
        parallel: false,
    }
}

/// One managed campaign.
#[derive(Debug)]
struct Campaign {
    id: u64,
    spec: CampaignSpec,
    phase: Phase,
    /// The live fleet, present between slices (and while paused, for a
    /// campaign that has run at least once this process). `None` before
    /// first dispatch and after recovery — rebuilt from the checkpoint
    /// on next dispatch.
    fleet: Option<Fleet>,
    /// Claimed by a worker right now (slot bookkeeping, not lifecycle).
    on_worker: bool,
    pause_requested: bool,
    cancel_requested: bool,
    epoch: u64,
    spent: u64,
    valid: u64,
    digest: Option<u64>,
    coverage: Option<u64>,
    error: Option<String>,
}

impl Campaign {
    fn fresh(id: u64, spec: CampaignSpec) -> Campaign {
        Campaign {
            id,
            spec,
            phase: Phase::Queued,
            fleet: None,
            on_worker: false,
            pause_requested: false,
            cancel_requested: false,
            epoch: 0,
            spent: 0,
            valid: 0,
            digest: None,
            coverage: None,
            error: None,
        }
    }

    fn from_status(s: CampaignStatus) -> Campaign {
        Campaign {
            id: s.id,
            spec: s.spec,
            phase: s.phase,
            fleet: None,
            on_worker: false,
            pause_requested: false,
            cancel_requested: false,
            epoch: s.epoch,
            spent: s.spent,
            valid: s.valid,
            digest: s.digest,
            coverage: s.coverage,
            error: s.error,
        }
    }

    fn status(&self) -> CampaignStatus {
        CampaignStatus {
            id: self.id,
            phase: self.phase,
            spec: self.spec.clone(),
            epoch: self.epoch,
            spent: self.spent,
            valid: self.valid,
            digest: self.digest,
            coverage: self.coverage,
            error: self.error.clone(),
        }
    }
}

#[derive(Debug)]
struct DaemonState {
    campaigns: BTreeMap<u64, Campaign>,
    next_id: u64,
    /// Pool slots currently running a slice.
    busy: usize,
    journal: Option<Journal>,
}

#[derive(Debug)]
struct Inner {
    cfg: DaemonConfig,
    registry: Arc<MetricsRegistry>,
    state: Mutex<DaemonState>,
    /// Signals workers: schedulable work may exist (or `stopping`).
    work: Condvar,
    /// Signals waiters: a campaign or slot changed state.
    idle: Condvar,
    /// Graceful: finish the in-flight slices, checkpoint, exit.
    stopping: AtomicBool,
    /// Hard kill: abandon in-flight slices without touching disk or
    /// state, simulating SIGKILL mid-epoch.
    killed: AtomicBool,
}

/// The fuzzing-as-a-service daemon. See the [module docs](self) for
/// the scheduling and durability model.
#[derive(Debug)]
pub struct Daemon {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn campaigns_root(state_dir: &Path) -> PathBuf {
    state_dir.join("campaigns")
}

fn campaign_dir(state_dir: &Path, id: u64) -> PathBuf {
    campaigns_root(state_dir).join(id.to_string())
}

/// The checkpoint directory of campaign `id` under `state_dir`.
pub fn checkpoint_dir(state_dir: &Path, id: u64) -> PathBuf {
    campaign_dir(state_dir, id).join("ck")
}

/// The previous-epoch checkpoint generation of campaign `id`: the
/// fallback when the newest generation is torn.
pub fn prev_checkpoint_dir(state_dir: &Path, id: u64) -> PathBuf {
    campaign_dir(state_dir, id).join("ck.prev")
}

/// The journal path under `state_dir`.
pub fn journal_path(state_dir: &Path) -> PathBuf {
    state_dir.join("serve.journal")
}

fn encode_meta(status: &CampaignStatus) -> String {
    let mut line = String::from("campaign");
    for (k, v) in status_fields(status) {
        line.push(' ');
        line.push_str(&k);
        line.push('=');
        line.push_str(&v);
    }
    format!("{META_HEADER}\n{line}\n")
}

fn decode_meta(text: &str) -> std::io::Result<CampaignStatus> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == META_HEADER => {}
        other => return Err(invalid(format!("bad meta header {other:?}"))),
    }
    let line = lines
        .next()
        .ok_or_else(|| invalid("meta missing campaign line".into()))?;
    let rest = line
        .strip_prefix("campaign ")
        .ok_or_else(|| invalid(format!("not a campaign line: {line:?}")))?;
    let fields = parse_fields(rest, &RESPONSE_KEYS).map_err(|e| invalid(e.to_string()))?;
    status_from_fields(&fields).map_err(|e| invalid(e.to_string()))
}

impl Inner {
    /// Writes the campaign's meta file atomically (tmp + rename).
    ///
    /// A failed write (real or injected) degrades instead of
    /// panicking: the previous meta stays in place, the
    /// `serve.write_degraded` counter ticks, and the next slice
    /// boundary retries — the restart contract already tolerates a meta
    /// one boundary behind.
    fn persist_meta(&self, c: &Campaign) {
        let Some(state_dir) = &self.cfg.state_dir else {
            return;
        };
        let dir = campaign_dir(state_dir, c.id);
        let tmp = dir.join("meta.tmp");
        let wrote = std::fs::create_dir_all(&dir)
            .and_then(|()| {
                chaos_write_file(
                    self.cfg.faults.as_ref(),
                    OpKind::MetaWrite,
                    &tmp,
                    encode_meta(&c.status()).as_bytes(),
                )
            })
            .and_then(|()| std::fs::rename(&tmp, dir.join("meta")));
        if wrote.is_err() {
            self.registry.serve_write_degraded.inc();
        }
    }

    /// Journals and applies one lifecycle transition. The journal write
    /// happens *before* the in-memory phase change and the meta rewrite
    /// after it, so on disk the journal always leads the meta. A failed
    /// journal append degrades (the transition still applies, the
    /// `serve.write_degraded` counter ticks) — refusing the transition
    /// would wedge the campaign on a storage hiccup, and the meta
    /// rewrite that follows keeps restart state correct.
    fn apply(
        &self,
        st: &mut DaemonState,
        id: u64,
        event: Event,
        digest: Option<u64>,
    ) -> Result<Phase, ServeError> {
        let from = st
            .campaigns
            .get(&id)
            .ok_or(ServeError::NoSuchCampaign(id))?
            .phase;
        let to = transition(from, event)?;
        if let Some(journal) = &mut st.journal {
            if journal.append(id, event, from, to, digest).is_err() {
                self.registry.serve_write_degraded.inc();
            }
        }
        self.registry.serve_transitions.inc();
        match to {
            Phase::Done => self.registry.serve_completed.inc(),
            Phase::Failed => self.registry.serve_failed.inc(),
            Phase::Cancelled => self.registry.serve_cancelled.inc(),
            _ => {}
        }
        let c = st.campaigns.get_mut(&id).expect("campaign vanished");
        c.phase = to;
        self.persist_meta(c);
        self.idle.notify_all();
        Ok(to)
    }

    /// The most urgent schedulable campaign: nearest deadline first,
    /// then lowest id. Schedulable = `Queued`, or `Running` between
    /// slices.
    fn pick(&self, st: &DaemonState) -> Option<u64> {
        st.campaigns
            .values()
            .filter(|c| !c.on_worker && matches!(c.phase, Phase::Queued | Phase::Running))
            .min_by_key(|c| (c.spec.deadline_ms.unwrap_or(u64::MAX), c.id))
            .map(|c| c.id)
    }

    fn worker_loop(&self) {
        let _metrics = pdf_obs::install(Arc::clone(&self.registry));
        loop {
            // Claim the next slice, or exit once the daemon stops.
            let (id, spec, fleet) = {
                let mut st = self.state.lock().expect("daemon state poisoned");
                loop {
                    if self.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(id) = self.pick(&st) {
                        if st.campaigns[&id].phase == Phase::Queued {
                            // First dispatch; the transition is what
                            // admits the campaign.
                            self.apply(&mut st, id, Event::Dispatch, None)
                                .expect("queued -> running is legal");
                        }
                        st.busy += 1;
                        let c = st.campaigns.get_mut(&id).expect("picked campaign");
                        c.on_worker = true;
                        break (id, c.spec.clone(), c.fleet.take());
                    }
                    st = self.work.wait(st).expect("daemon state poisoned");
                }
            };
            self.run_slice(id, spec, fleet);
            let mut st = self.state.lock().expect("daemon state poisoned");
            let c = st.campaigns.get_mut(&id).expect("campaign vanished");
            c.on_worker = false;
            st.busy -= 1;
            self.idle.notify_all();
            // The campaign may still be schedulable; let a (possibly
            // different) worker take its next slice.
            self.work.notify_one();
        }
    }

    /// Runs one epoch slice of campaign `id` and settles the outcome.
    /// Called without the state lock; `fleet` is `None` on the first
    /// slice after submission or recovery.
    fn run_slice(&self, id: u64, spec: CampaignSpec, fleet: Option<Fleet>) {
        // Build (or rebuild from checkpoint) outside the lock.
        let mut fleet = match fleet {
            Some(f) => f,
            None => match self.build_fleet(id, &spec) {
                Ok(f) => f,
                Err(msg) => {
                    let mut st = self.state.lock().expect("daemon state poisoned");
                    let c = st.campaigns.get_mut(&id).expect("campaign vanished");
                    c.error = Some(msg);
                    let _ = self.apply(&mut st, id, Event::Fail, None);
                    return;
                }
            },
        };
        self.registry.serve_slices.inc();
        let ran = catch_unwind(AssertUnwindSafe(|| {
            let _span = pdf_obs::span(campaign_label(id));
            fleet.run_epoch()
        }));
        if self.killed.load(Ordering::SeqCst) {
            // Simulated hard kill: the slice's results are lost; disk
            // stays at the previous boundary and recovery re-runs this
            // epoch deterministically.
            return;
        }
        match ran {
            Err(panic) => {
                let msg = panic_message(panic);
                let mut st = self.state.lock().expect("daemon state poisoned");
                let c = st.campaigns.get_mut(&id).expect("campaign vanished");
                c.error = Some(format!("epoch slice panicked: {msg}"));
                let _ = self.apply(&mut st, id, Event::Fail, None);
            }
            Ok(true) => {
                // Budget spent: finalize. The report digest rides on the
                // finish journal record.
                let report = fleet.into_report();
                let digest = report.digest();
                let mut st = self.state.lock().expect("daemon state poisoned");
                let c = st.campaigns.get_mut(&id).expect("campaign vanished");
                c.epoch = report.epochs;
                c.spent = report.total_execs;
                c.valid = report.valid_inputs.len() as u64;
                c.digest = Some(digest);
                c.coverage = Some(report.coverage_digest());
                let _ = self.apply(&mut st, id, Event::Finish, Some(digest));
            }
            Ok(false) => {
                // Mid-campaign boundary: bring the disk up to date, then
                // settle pending pause/cancel requests.
                let progress = fleet.progress();
                if let Some(state_dir) = &self.cfg.state_dir {
                    match self.checkpoint_rotating(&fleet, state_dir, id) {
                        Ok(()) => self.registry.serve_checkpoints.inc(),
                        // Degrade: the previous generation is intact (the
                        // rotation preserved it), so a crash now loses at
                        // most this one epoch — the documented contract.
                        Err(_) => self.registry.serve_write_degraded.inc(),
                    }
                }
                let mut st = self.state.lock().expect("daemon state poisoned");
                let c = st.campaigns.get_mut(&id).expect("campaign vanished");
                c.epoch = progress.epoch;
                c.spent = progress.total_execs;
                c.valid = progress.valid_inputs;
                if c.cancel_requested {
                    c.cancel_requested = false;
                    let _ = self.apply(&mut st, id, Event::Cancel, None);
                } else if c.pause_requested {
                    c.pause_requested = false;
                    let c = st.campaigns.get_mut(&id).expect("campaign vanished");
                    c.fleet = Some(fleet);
                    let _ = self.apply(&mut st, id, Event::Pause, None);
                } else {
                    c.fleet = Some(fleet);
                    self.persist_meta(c);
                }
            }
        }
    }

    /// Writes campaign `id`'s checkpoint with two-generation rotation:
    /// the current `ck/` is renamed to `ck.prev/` first, so a torn
    /// write can damage at most the newest generation and restart
    /// falls back one epoch. With a fault plan installed, the write
    /// consults it — a scheduled torn write truncates the fresh
    /// manifest mid-line (the on-disk state a real crash leaves).
    fn checkpoint_rotating(&self, fleet: &Fleet, state_dir: &Path, id: u64) -> Result<(), String> {
        let cur = checkpoint_dir(state_dir, id);
        let prev = prev_checkpoint_dir(state_dir, id);
        if cur.join(pdf_fleet::MANIFEST_FILE).exists() {
            let _ = std::fs::remove_dir_all(&prev);
            std::fs::rename(&cur, &prev).map_err(|e| format!("rotate checkpoint: {e}"))?;
        }
        fleet
            .checkpoint_to(&cur)
            .map_err(|e| format!("write campaign checkpoint: {e}"))?;
        if let Some(fault) = self
            .cfg
            .faults
            .as_ref()
            .and_then(|p| p.decide(OpKind::CheckpointWrite))
        {
            let manifest = cur.join(pdf_fleet::MANIFEST_FILE);
            match fault.kind {
                FaultKind::TornWrite => {
                    if let Ok(text) = std::fs::read(&manifest) {
                        let keep = (fault.magnitude as usize) % text.len().max(1);
                        let _ = std::fs::write(&manifest, &text[..keep]);
                    }
                    return Err("injected: torn checkpoint write".into());
                }
                FaultKind::Enospc => {
                    let _ = std::fs::remove_file(&manifest);
                    return Err("injected: no space left on device".into());
                }
                FaultKind::Delay => {
                    std::thread::sleep(self.cfg.faults.as_ref().unwrap().delay_of(fault));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Quarantines the damaged checkpoint generation at `dir` (renames
    /// it aside for post-mortems) and ticks the counter.
    fn quarantine_checkpoint(&self, dir: &Path) {
        let q = crate::journal::append_suffix(dir, ".quarantine");
        let _ = std::fs::remove_dir_all(&q);
        if std::fs::rename(dir, &q).is_ok() {
            self.registry.serve_checkpoint_quarantined.inc();
        }
    }

    fn build_fleet(&self, id: u64, spec: &CampaignSpec) -> Result<Fleet, String> {
        let info = pdf_subjects::by_name(&spec.subject)
            .ok_or_else(|| format!("unknown subject {:?}", spec.subject))?;
        let cfg = fleet_config(spec);
        let Some(state_dir) = &self.cfg.state_dir else {
            return Fleet::new(info.subject, cfg).map_err(|e| format!("fleet config: {e}"));
        };
        // Newest generation first; a torn `ck/` falls back to `ck.prev/`
        // (one epoch older), and the damaged generation is quarantined.
        let gens: Vec<PathBuf> = [
            checkpoint_dir(state_dir, id),
            prev_checkpoint_dir(state_dir, id),
        ]
        .into_iter()
        .filter(|d| d.join(pdf_fleet::MANIFEST_FILE).exists() || d.exists())
        .collect();
        if gens.is_empty() {
            return Fleet::new(info.subject, cfg).map_err(|e| format!("fleet config: {e}"));
        }
        match Fleet::resume_with_fallback(info.subject, cfg.clone(), &gens) {
            Ok((fleet, picked)) => {
                for dir in &gens[..picked] {
                    self.quarantine_checkpoint(dir);
                }
                Ok(fleet)
            }
            Err(e) if e.class() == ErrorClass::Corrupt => {
                // Every generation is damaged: quarantine them all and
                // restart the campaign from scratch — deterministic, so
                // the final digest is unchanged (it just costs re-run
                // time).
                for dir in &gens {
                    self.quarantine_checkpoint(dir);
                }
                Fleet::new(info.subject, cfg).map_err(|e| format!("fleet config: {e}"))
            }
            Err(e) => Err(format!("checkpoint resume failed: {e}")),
        }
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

impl Daemon {
    /// Opens a daemon: recovers every campaign persisted under the
    /// state directory (if any), then starts the worker pool.
    ///
    /// Recovery maps persisted phases to restart phases: terminal and
    /// `Paused` campaigns are kept as-is, `Queued` ones wait their
    /// turn, and `Running` ones — whose worker died with the previous
    /// process — are requeued through the [`Event::Requeue`] edge (the
    /// one extra transition a crash costs in the journal).
    ///
    /// # Errors
    ///
    /// Real I/O errors creating the state directory or reading
    /// persisted state. *Corruption* is not an error: a torn journal
    /// tail is quarantined (`serve.journal.quarantine`) and the legal
    /// prefix salvaged; a corrupt meta is quarantined
    /// (`meta.quarantine`) and its campaign dropped from recovery.
    pub fn open(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        assert!(cfg.workers >= 1, "daemon needs at least one worker");
        let registry = Arc::new(MetricsRegistry::new());
        let mut st = DaemonState {
            campaigns: BTreeMap::new(),
            next_id: 1,
            busy: 0,
            journal: None,
        };
        if let Some(state_dir) = &cfg.state_dir {
            std::fs::create_dir_all(campaigns_root(state_dir))?;
            let recovered_journal = recover_journal(&journal_path(state_dir))?;
            if recovered_journal.quarantined_lines > 0 {
                registry
                    .serve_journal_recovered
                    .add(recovered_journal.quarantined_lines as u64);
            }
            let mut journal = Journal::open(&journal_path(state_dir))?;
            journal.set_faults(cfg.faults.clone());
            st.journal = Some(journal);
            let mut recovered: Vec<Campaign> = Vec::new();
            for entry in std::fs::read_dir(campaigns_root(state_dir))? {
                let meta = entry?.path().join("meta");
                if !meta.exists() {
                    continue;
                }
                match decode_meta(&std::fs::read_to_string(&meta)?) {
                    Ok(status) => recovered.push(Campaign::from_status(status)),
                    Err(_) => {
                        // Torn meta (killed mid-rename on a filesystem
                        // without atomic rename, or injected): quarantine
                        // it; the campaign is lost but the daemon is not.
                        let q = crate::journal::append_suffix(&meta, ".quarantine");
                        let _ = std::fs::rename(&meta, q);
                        registry.serve_checkpoint_quarantined.inc();
                    }
                }
            }
            recovered.sort_by_key(|c| c.id);
            for c in recovered {
                st.next_id = st.next_id.max(c.id + 1);
                st.campaigns.insert(c.id, c);
            }
        }
        let inner = Arc::new(Inner {
            registry,
            state: Mutex::new(st),
            work: Condvar::new(),
            idle: Condvar::new(),
            stopping: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            cfg,
        });
        {
            // Requeue campaigns the previous process died holding.
            let mut st = inner.state.lock().expect("daemon state poisoned");
            let running: Vec<u64> = st
                .campaigns
                .values()
                .filter(|c| c.phase == Phase::Running)
                .map(|c| c.id)
                .collect();
            for id in running {
                inner
                    .apply(&mut st, id, Event::Requeue, None)
                    .expect("running -> queued is legal");
            }
        }
        let handles = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pdf-serve-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn daemon worker")
            })
            .collect();
        Ok(Daemon {
            inner,
            handles: Mutex::new(handles),
        })
    }

    /// Submits a campaign; returns its id. The campaign starts
    /// `Queued` and is dispatched as soon as a pool slot frees up.
    ///
    /// A spec carrying an idempotency key the daemon has already
    /// admitted returns the *original* campaign id without creating a
    /// new campaign — a client that lost the first reply can resubmit
    /// safely. The key survives restarts (it rides in the meta file).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSpec`] / [`ServeError::UnknownSubject`] on an
    /// unrunnable spec, [`ServeError::Stopping`] during shutdown,
    /// [`ServeError::Overloaded`] past the admission cap.
    pub fn submit(&self, spec: CampaignSpec) -> Result<u64, ServeError> {
        if self.inner.stopping.load(Ordering::SeqCst) {
            return Err(ServeError::Stopping);
        }
        spec.validate()
            .map_err(|e| ServeError::BadSpec(e.to_string()))?;
        if pdf_subjects::by_name(&spec.subject).is_none() {
            return Err(ServeError::UnknownSubject(spec.subject.clone()));
        }
        let mut st = self.inner.state.lock().expect("daemon state poisoned");
        if let Some(key) = &spec.idempotency_key {
            if let Some(existing) = st
                .campaigns
                .values()
                .find(|c| c.spec.idempotency_key.as_ref() == Some(key))
            {
                return Ok(existing.id);
            }
        }
        if let Some(cap) = self.inner.cfg.max_queued {
            let active = st
                .campaigns
                .values()
                .filter(|c| matches!(c.phase, Phase::Queued | Phase::Running))
                .count();
            if active >= cap {
                self.inner.registry.serve_shed.inc();
                // Deterministic advisory delay: scale with how far over
                // capacity the pool is, one slice-ish step per excess
                // campaign.
                let over = (active - cap) as u64;
                let retry_after_ms = (25 * (over + 1)).min(1_000);
                return Err(ServeError::Overloaded { retry_after_ms });
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        let c = Campaign::fresh(id, spec);
        self.inner.persist_meta(&c);
        st.campaigns.insert(id, c);
        self.inner.registry.serve_submitted.inc();
        self.inner.work.notify_one();
        Ok(id)
    }

    /// The status of campaign `id`, if it exists.
    pub fn status(&self, id: u64) -> Option<CampaignStatus> {
        let st = self.inner.state.lock().expect("daemon state poisoned");
        st.campaigns.get(&id).map(Campaign::status)
    }

    /// Every campaign's status, in id order.
    pub fn list(&self) -> Vec<CampaignStatus> {
        let st = self.inner.state.lock().expect("daemon state poisoned");
        st.campaigns.values().map(Campaign::status).collect()
    }

    /// Requests a pause. A campaign on a worker pauses at its next
    /// slice boundary (the returned phase is still `Running` until
    /// then); otherwise the transition applies immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchCampaign`] / [`ServeError::Illegal`].
    pub fn pause(&self, id: u64) -> Result<Phase, ServeError> {
        let mut st = self.inner.state.lock().expect("daemon state poisoned");
        let c = st
            .campaigns
            .get_mut(&id)
            .ok_or(ServeError::NoSuchCampaign(id))?;
        if c.phase == Phase::Running && c.on_worker {
            // Validate the edge now so an illegal request still errors,
            // but let the worker take it at the boundary.
            transition(c.phase, Event::Pause)?;
            c.pause_requested = true;
            return Ok(Phase::Running);
        }
        self.inner.apply(&mut st, id, Event::Pause, None)
    }

    /// Resumes a paused campaign (or withdraws a pending pause
    /// request).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchCampaign`] / [`ServeError::Illegal`].
    pub fn resume(&self, id: u64) -> Result<Phase, ServeError> {
        let mut st = self.inner.state.lock().expect("daemon state poisoned");
        let c = st
            .campaigns
            .get_mut(&id)
            .ok_or(ServeError::NoSuchCampaign(id))?;
        if c.phase == Phase::Running && c.pause_requested {
            c.pause_requested = false;
            return Ok(Phase::Running);
        }
        let phase = self.inner.apply(&mut st, id, Event::Resume, None)?;
        self.inner.work.notify_one();
        Ok(phase)
    }

    /// Requests cancellation. A campaign on a worker cancels at its
    /// next slice boundary; otherwise the transition applies
    /// immediately (and any in-memory fleet is dropped).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchCampaign`] / [`ServeError::Illegal`].
    pub fn cancel(&self, id: u64) -> Result<Phase, ServeError> {
        let mut st = self.inner.state.lock().expect("daemon state poisoned");
        let c = st
            .campaigns
            .get_mut(&id)
            .ok_or(ServeError::NoSuchCampaign(id))?;
        if c.phase == Phase::Running && c.on_worker {
            transition(c.phase, Event::Cancel)?;
            c.cancel_requested = true;
            return Ok(Phase::Running);
        }
        let phase = self.inner.apply(&mut st, id, Event::Cancel, None)?;
        st.campaigns.get_mut(&id).expect("campaign vanished").fleet = None;
        Ok(phase)
    }

    /// Pool slots currently running a slice.
    pub fn busy_slots(&self) -> usize {
        self.inner.state.lock().expect("daemon state poisoned").busy
    }

    /// Campaigns in non-terminal, non-paused phases (queued or
    /// admitted).
    pub fn active_len(&self) -> usize {
        let st = self.inner.state.lock().expect("daemon state poisoned");
        st.campaigns
            .values()
            .filter(|c| matches!(c.phase, Phase::Queued | Phase::Running))
            .count()
    }

    /// The daemon's metrics registry (serve counters, plus everything
    /// the campaigns record while on workers).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.registry)
    }

    /// Blocks until no campaign is queued or admitted (all terminal or
    /// paused) and every pool slot is free, or until `timeout` passes.
    /// Returns `true` when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("daemon state poisoned");
        loop {
            let active = st.busy > 0
                || st
                    .campaigns
                    .values()
                    .any(|c| matches!(c.phase, Phase::Queued | Phase::Running));
            if !active {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, res) = self
                .inner
                .idle
                .wait_timeout(st, left)
                .expect("daemon state poisoned");
            st = guard;
            if res.timed_out() {
                return false;
            }
        }
    }

    fn stop_workers(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        // Take the state lock before notifying: a worker that read
        // `stopping == false` still holds the lock at that point, so by
        // the time this acquisition succeeds it is either parked in
        // `wait` (the notify below wakes it) or past another check that
        // saw `true` — no wakeup can be missed.
        drop(self.inner.state.lock().expect("daemon state poisoned"));
        self.inner.work.notify_all();
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("daemon handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            h.join().expect("daemon worker panicked");
        }
    }

    /// Graceful shutdown: stop claiming new slices, let in-flight
    /// slices finish and checkpoint, join the pool. Disk is current at
    /// every boundary, so a later [`Daemon::open`] on the same state
    /// directory resumes everything. Idempotent.
    pub fn shutdown(&self) {
        self.stop_workers();
    }

    /// Hard stop: abandon in-flight slices *without* updating state or
    /// disk — the in-process equivalent of SIGKILL mid-epoch, for
    /// crash-recovery tests. Disk stays at the last slice boundary.
    pub fn hard_stop(&self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.stop_workers();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read_journal;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pdf-serve-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_spec(subject: &str, seed: u64) -> CampaignSpec {
        CampaignSpec {
            subject: subject.into(),
            seed,
            execs: 400,
            shards: 2,
            sync_every: 60,
            exec_mode: pdf_core::ExecMode::Full,
            deadline_ms: None,
            idempotency_key: None,
        }
    }

    #[test]
    fn campaign_runs_to_done_with_serial_digest() {
        let daemon = Daemon::open(DaemonConfig::in_memory(2)).unwrap();
        let spec = small_spec("arith", 5);
        let id = daemon.submit(spec.clone()).unwrap();
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        let status = daemon.status(id).unwrap();
        assert_eq!(status.phase, Phase::Done);
        let info = pdf_subjects::by_name("arith").unwrap();
        let baseline = Fleet::new(info.subject, fleet_config(&spec)).unwrap().run();
        assert_eq!(status.digest, Some(baseline.digest()));
        assert_eq!(status.coverage, Some(baseline.coverage_digest()));
        assert_eq!(status.spent, baseline.total_execs);
        assert_eq!(daemon.busy_slots(), 0);
        daemon.shutdown();
    }

    #[test]
    fn pause_resume_cancel_lifecycle() {
        let daemon = Daemon::open(DaemonConfig::in_memory(1)).unwrap();
        // Paused before ever dispatching: pause beats the single worker
        // only if we submit while the worker is busy; instead exercise
        // the queued->paused edge directly on a second campaign.
        let a = daemon.submit(small_spec("dyck", 1)).unwrap();
        let b = daemon.submit(small_spec("dyck", 2)).unwrap();
        // b is likely still queued behind a on the 1-worker pool.
        match daemon.pause(b) {
            Ok(_) => {}
            Err(e) => panic!("pause refused: {e}"),
        }
        assert!(matches!(
            daemon.status(b).unwrap().phase,
            Phase::Paused | Phase::Running
        ));
        // Resume (or withdraw the pending pause) and cancel it.
        let _ = daemon.resume(b);
        let _ = daemon.cancel(b);
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        assert_eq!(daemon.status(a).unwrap().phase, Phase::Done);
        assert!(daemon.status(b).unwrap().phase.is_terminal());
        assert!(daemon.status(999).is_none());
        assert!(matches!(daemon.cancel(a), Err(ServeError::Illegal(_))));
        daemon.shutdown();
    }

    #[test]
    fn bad_submissions_rejected() {
        let daemon = Daemon::open(DaemonConfig::in_memory(1)).unwrap();
        assert!(matches!(
            daemon.submit(small_spec("no-such-subject", 1)),
            Err(ServeError::UnknownSubject(_))
        ));
        let mut bad = small_spec("arith", 1);
        bad.execs = 0;
        assert!(matches!(daemon.submit(bad), Err(ServeError::BadSpec(_))));
        daemon.shutdown();
        assert!(matches!(
            daemon.submit(small_spec("arith", 1)),
            Err(ServeError::Stopping)
        ));
    }

    #[test]
    fn graceful_restart_resumes_digest_identically() {
        let dir = tmpdir("restart");
        let spec = small_spec("arith", 9);
        let uninterrupted = {
            let info = pdf_subjects::by_name("arith").unwrap();
            Fleet::new(info.subject, fleet_config(&spec)).unwrap().run()
        };
        let id = {
            let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
            let id = daemon.submit(spec.clone()).unwrap();
            // Let it make some progress, then stop gracefully mid-way.
            let deadline = Instant::now() + Duration::from_secs(30);
            while daemon.status(id).unwrap().epoch == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            daemon.shutdown();
            id
        };
        let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        let status = daemon.status(id).unwrap();
        assert_eq!(status.phase, Phase::Done);
        assert_eq!(status.digest, Some(uninterrupted.digest()));
        daemon.shutdown();
        // The journal holds the full, legal history including the
        // requeue edge and the final digest.
        let records = read_journal(&journal_path(&dir)).unwrap();
        assert!(records
            .iter()
            .any(|r| r.event == Event::Finish && r.digest == Some(uninterrupted.digest())));
        let mut phase = Phase::Queued;
        for r in records.iter().filter(|r| r.id == id) {
            assert_eq!(r.from, phase, "journal gap at seq {}", r.seq);
            phase = transition(r.from, r.event).expect("journaled transition is legal");
            assert_eq!(phase, r.to);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_idempotency_key_returns_original_id() {
        let daemon = Daemon::open(DaemonConfig::in_memory(1)).unwrap();
        let mut spec = small_spec("arith", 3);
        spec.idempotency_key = Some("retry-abc".into());
        let first = daemon.submit(spec.clone()).unwrap();
        let again = daemon.submit(spec.clone()).unwrap();
        assert_eq!(first, again);
        // A different key is a different campaign.
        spec.idempotency_key = Some("retry-def".into());
        assert_ne!(daemon.submit(spec).unwrap(), first);
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        daemon.shutdown();
    }

    #[test]
    fn idempotency_key_survives_restart() {
        let dir = tmpdir("idem");
        let mut spec = small_spec("arith", 4);
        spec.idempotency_key = Some("boot-1".into());
        let id = {
            let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
            let id = daemon.submit(spec.clone()).unwrap();
            assert!(daemon.wait_idle(Duration::from_secs(60)));
            daemon.shutdown();
            id
        };
        let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
        assert_eq!(daemon.submit(spec).unwrap(), id);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submissions_past_the_cap_are_shed_with_retry_hint() {
        let daemon = Daemon::open(DaemonConfig::in_memory(1).with_max_queued(2)).unwrap();
        let mut admitted = 0;
        let mut shed = 0;
        for seed in 0..6 {
            match daemon.submit(small_spec("dyck", seed)) {
                Ok(_) => admitted += 1,
                Err(ServeError::Overloaded { retry_after_ms }) => {
                    assert!((1..=1_000).contains(&retry_after_ms));
                    shed += 1;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(admitted >= 2, "cap must admit up to its limit");
        assert!(shed > 0, "cap must shed past its limit");
        assert_eq!(daemon.registry().serve_shed.get(), shed);
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        // Idle again: capacity is back.
        assert!(daemon.submit(small_spec("dyck", 99)).is_ok());
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        daemon.shutdown();
    }

    #[test]
    fn restart_survives_torn_journal_and_torn_checkpoint() {
        let dir = tmpdir("torn");
        let spec = small_spec("arith", 9);
        let uninterrupted = {
            let info = pdf_subjects::by_name("arith").unwrap();
            Fleet::new(info.subject, fleet_config(&spec)).unwrap().run()
        };
        let id = {
            let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
            let id = daemon.submit(spec.clone()).unwrap();
            let deadline = Instant::now() + Duration::from_secs(30);
            while daemon.status(id).unwrap().epoch < 2 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            daemon.hard_stop();
            id
        };
        // Torn journal tail, as a hard kill mid-append would leave.
        let jpath = journal_path(&dir);
        let mut text = std::fs::read_to_string(&jpath).unwrap();
        text.push_str("txn seq=999 id=1 ev=dis");
        std::fs::write(&jpath, &text).unwrap();
        // Torn newest checkpoint generation.
        let manifest = checkpoint_dir(&dir, id).join(pdf_fleet::MANIFEST_FILE);
        if manifest.exists() {
            let m = std::fs::read_to_string(&manifest).unwrap();
            std::fs::write(&manifest, &m[..m.len() / 2]).unwrap();
        }
        let daemon = Daemon::open(DaemonConfig::persistent(1, &dir)).unwrap();
        assert!(
            daemon.registry().serve_journal_recovered.get() > 0,
            "torn journal tail must be quarantined"
        );
        assert!(daemon.wait_idle(Duration::from_secs(120)));
        let status = daemon.status(id).unwrap();
        assert_eq!(status.phase, Phase::Done);
        assert_eq!(
            status.digest,
            Some(uninterrupted.digest()),
            "recovery from torn state must stay digest-identical"
        );
        daemon.shutdown();
        assert!(crate::journal::append_suffix(&jpath, ".quarantine").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips() {
        let mut c = Campaign::fresh(3, small_spec("csv", 4));
        c.phase = Phase::Failed;
        c.error = Some("epoch slice panicked: boom with spaces".into());
        c.epoch = 2;
        c.spent = 120;
        let back = decode_meta(&encode_meta(&c.status())).unwrap();
        assert_eq!(back, c.status());
        assert!(decode_meta("wrong header\n").is_err());
    }
}

//! The TCP front end: one listener, one thread per connection,
//! `pdf-wire v1` framing over a shared [`Daemon`].
//!
//! Degradation posture (the [`ServerConfig`] knobs):
//!
//! - **Slowloris kill** — every connection gets a socket read timeout;
//!   a peer that goes quiet mid-frame is answered with
//!   `err code=timeout` and closed (`serve.conn_timeout` counts them).
//! - **Connection cap** — past [`ServerConfig::max_conns`] open
//!   connections, new ones are greeted, answered with
//!   `err code=overloaded retry-after-ms=N` and closed
//!   (`serve.conn_rejected`), so the daemon's thread count is bounded.
//! - **Spawn failure** — a connection whose thread cannot be spawned is
//!   dropped and counted (`serve.spawn_failed`), never a panic in the
//!   accept loop.
//! - **Wire faults** — with a [`FaultPlan`] installed, every socket
//!   read and write consults it (short reads, delays, mid-stream
//!   disconnects), which is how the chaos soak exercises all of the
//!   above on a reproducible schedule.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pdf_chaos::{ChaosReader, ChaosWriter, FaultPlan, OpKind};

use crate::daemon::{Daemon, ServeError};
use crate::wire::{
    read_capped_line, status_fields, CampaignStatus, Request, Response, WireError, WIRE_HEADER,
};

/// How often `watch` polls the campaign it is streaming.
const WATCH_POLL: Duration = Duration::from_millis(25);

/// Retry hint handed to connections rejected over the cap.
const REJECT_RETRY_MS: u64 = 100;

/// Front-end robustness knobs; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket read timeout per connection: how long a peer may sit
    /// silent before it is answered `err code=timeout` and closed.
    /// `None` waits forever (the pre-hardening behavior; tests only).
    pub read_timeout: Option<Duration>,
    /// Maximum simultaneously open connections; the rest are shed.
    pub max_conns: usize,
    /// Wire fault-injection plan for chaos testing; `None` (production)
    /// injects nothing.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            max_conns: 64,
            faults: None,
        }
    }
}

/// State shared between the server handle, the accept thread and every
/// connection thread.
#[derive(Debug)]
struct Shared {
    daemon: Arc<Daemon>,
    cfg: ServerConfig,
    stopping: AtomicBool,
    /// Open connections right now, for the admission cap.
    active: AtomicUsize,
    /// One clone of every open connection's stream keyed by connection
    /// id, so [`Server::stop`] can force-unblock readers.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    fn finish(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        *self.done.lock().expect("server state poisoned") = true;
        self.done_cv.notify_all();
    }

    /// Drops (and shuts down) the registered clone of connection `id`.
    /// Without this, a connection the *server* closes first lingers
    /// half-open behind the clone — the peer never sees EOF — and a
    /// long-lived daemon leaks one fd per connection ever served.
    fn release(&self, id: u64) {
        let mut conns = self.conns.lock().expect("server state poisoned");
        if let Some(i) = conns.iter().position(|(cid, _)| *cid == id) {
            let (_, stream) = conns.swap_remove(i);
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A listening `pdf-wire v1` server over a [`Daemon`].
///
/// Dropping the server (or calling [`stop`](Server::stop)) closes the
/// listener and every open connection; it does **not** shut the daemon
/// down — callers decide whether the daemon outlives its socket. The
/// wire `shutdown` command does both: it gracefully stops the daemon,
/// marks the server finished, and wakes
/// [`wait_shutdown`](Server::wait_shutdown).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections with the default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// I/O errors from the bind.
    pub fn start(daemon: Arc<Daemon>, addr: &str) -> std::io::Result<Server> {
        Server::start_with(daemon, addr, ServerConfig::default())
    }

    /// [`start`](Server::start) with explicit robustness knobs.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind.
    pub fn start_with(
        daemon: Arc<Daemon>,
        addr: &str,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            daemon,
            cfg,
            stopping: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pdf-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (the real port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon this server fronts.
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.shared.daemon
    }

    /// Blocks until a wire `shutdown` command (or [`stop`](Server::stop))
    /// closes the server.
    pub fn wait_shutdown(&self) {
        let mut finished = self.shared.done.lock().expect("server state poisoned");
        while !*finished {
            finished = self
                .shared
                .done_cv
                .wait(finished)
                .expect("server state poisoned");
        }
    }

    /// Stops the server: closes every open connection (unblocking their
    /// reader threads), stops accepting, and joins the accept thread.
    /// Idempotent; does not touch the daemon.
    pub fn stop(&mut self) {
        self.shared.finish();
        // Force-close open connections so their threads stop waiting on
        // clients that may never send another byte.
        for (_, s) in self
            .shared
            .conns
            .lock()
            .expect("server state poisoned")
            .drain(..)
        {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            h.join().expect("accept thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Greets, sheds and closes a connection that arrived over the cap.
fn reject_connection(mut stream: TcpStream) {
    let resp = Response::Err {
        code: "overloaded".to_string(),
        retry_after_ms: Some(REJECT_RETRY_MS),
        msg: "connection limit reached".to_string(),
    };
    let _ = writeln!(stream, "{WIRE_HEADER}");
    let _ = stream.write_all(resp.encode().as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            shared.daemon.registry().serve_conn_rejected.inc();
            reject_connection(stream);
            continue;
        }
        let conn_id = next_conn;
        next_conn += 1;
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("server state poisoned")
                .push((conn_id, clone));
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("pdf-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_shared);
                conn_shared.release(conn_id);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(h) => threads.push(h),
            Err(_) => {
                // Thread exhaustion: shed this connection instead of
                // panicking the accept loop; the counter tells the
                // operator why clients saw a drop.
                shared.release(conn_id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.daemon.registry().serve_spawn_failed.inc();
            }
        }
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate handles.
        threads.retain(|h| !h.is_finished());
    }
    // Streams were force-closed by stop(); the threads are unblocked.
    for h in threads {
        let _ = h.join();
    }
}

fn err_response(e: &ServeError) -> Response {
    match e {
        ServeError::Overloaded { retry_after_ms } => Response::Err {
            code: "overloaded".to_string(),
            retry_after_ms: Some(*retry_after_ms),
            msg: e.to_string(),
        },
        _ => {
            let code = match e {
                ServeError::NoSuchCampaign(_) => "no-such-campaign",
                ServeError::Illegal(_) => "illegal-transition",
                ServeError::UnknownSubject(_) => "unknown-subject",
                ServeError::BadSpec(_) => "bad-spec",
                ServeError::Stopping => "stopping",
                ServeError::Overloaded { .. } => unreachable!("handled above"),
            };
            Response::err(code, e.to_string())
        }
    }
}

fn phase_ok(id: u64, result: Result<crate::lifecycle::Phase, ServeError>) -> Response {
    match result {
        Ok(phase) => Response::Ok(vec![
            ("id".to_string(), id.to_string()),
            ("state".to_string(), phase.name().to_string()),
        ]),
        Err(e) => err_response(&e),
    }
}

fn status_or_missing(daemon: &Daemon, id: u64) -> Result<CampaignStatus, Response> {
    daemon
        .status(id)
        .ok_or_else(|| err_response(&ServeError::NoSuchCampaign(id)))
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let daemon = &*shared.daemon;
    stream.set_read_timeout(shared.cfg.read_timeout)?;
    stream.set_nodelay(true)?;
    let plan = shared.cfg.faults.clone();
    let mut writer = ChaosWriter::new(stream.try_clone()?, plan.clone(), OpKind::WireWrite);
    writeln!(writer, "{WIRE_HEADER}")?;
    writer.flush()?;
    let mut reader = BufReader::new(ChaosReader::new(stream, plan, OpKind::WireRead));
    loop {
        let line = match read_capped_line(&mut reader) {
            Ok(line) => line,
            Err(WireError::UnexpectedEof) => return Ok(()),
            Err(WireError::Timeout) => {
                // Slowloris defense: the peer went silent mid-session.
                daemon.registry().serve_conn_timeouts.inc();
                let resp = Response::err("timeout", "no complete frame before read timeout");
                let _ = writer.write_all(resp.encode().as_bytes());
                let _ = writer.flush();
                return Ok(());
            }
            Err(e) => {
                let resp = Response::err("bad-request", e.to_string());
                writer.write_all(resp.encode().as_bytes())?;
                writer.flush()?;
                return Ok(());
            }
        };
        let request = match Request::decode(&line) {
            Ok(req) => req,
            Err(WireError::Empty) => continue,
            Err(e) => {
                let resp = Response::err("bad-request", e.to_string());
                writer.write_all(resp.encode().as_bytes())?;
                writer.flush()?;
                continue;
            }
        };
        let mut quit = false;
        match request {
            Request::Submit(spec) => {
                let resp = match daemon.submit(spec) {
                    Ok(id) => Response::Ok(vec![("id".to_string(), id.to_string())]),
                    Err(e) => err_response(&e),
                };
                writer.write_all(resp.encode().as_bytes())?;
            }
            Request::Status { id } => {
                let resp = match status_or_missing(daemon, id) {
                    Ok(s) => Response::Ok(status_fields(&s)),
                    Err(resp) => resp,
                };
                writer.write_all(resp.encode().as_bytes())?;
            }
            Request::Pause { id } => {
                writer.write_all(phase_ok(id, daemon.pause(id)).encode().as_bytes())?;
            }
            Request::Resume { id } => {
                writer.write_all(phase_ok(id, daemon.resume(id)).encode().as_bytes())?;
            }
            Request::Cancel { id } => {
                writer.write_all(phase_ok(id, daemon.cancel(id)).encode().as_bytes())?;
            }
            Request::List => {
                let all = daemon.list();
                for s in &all {
                    writer.write_all(Response::Item(status_fields(s)).encode().as_bytes())?;
                }
                let end = Response::End(vec![("n".to_string(), all.len().to_string())]);
                writer.write_all(end.encode().as_bytes())?;
            }
            Request::Watch { id } => match status_or_missing(daemon, id) {
                Err(resp) => writer.write_all(resp.encode().as_bytes())?,
                Ok(mut last) => {
                    writer.write_all(Response::Item(status_fields(&last)).encode().as_bytes())?;
                    writer.flush()?;
                    while !last.phase.is_terminal() && !shared.stopping.load(Ordering::SeqCst) {
                        std::thread::sleep(WATCH_POLL);
                        let now = match status_or_missing(daemon, id) {
                            Ok(s) => s,
                            Err(_) => break,
                        };
                        if now != last {
                            last = now;
                            if !last.phase.is_terminal() {
                                writer.write_all(
                                    Response::Item(status_fields(&last)).encode().as_bytes(),
                                )?;
                                writer.flush()?;
                            }
                        }
                    }
                    writer.write_all(Response::End(status_fields(&last)).encode().as_bytes())?;
                }
            },
            Request::Metrics => {
                let text = daemon.registry().snapshot().encode();
                let lines = text.lines().map(str::to_string).collect();
                writer.write_all(Response::Blob(lines).encode().as_bytes())?;
            }
            Request::Ping => {
                let resp = Response::Ok(vec![("pong".to_string(), "1".to_string())]);
                writer.write_all(resp.encode().as_bytes())?;
            }
            Request::Shutdown => {
                let resp = Response::Ok(vec![("stopping".to_string(), "1".to_string())]);
                writer.write_all(resp.encode().as_bytes())?;
                writer.flush()?;
                daemon.shutdown();
                shared.finish();
                quit = true;
            }
        }
        writer.flush()?;
        if quit {
            return Ok(());
        }
    }
}

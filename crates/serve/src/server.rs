//! The TCP front end: one listener, one thread per connection,
//! `pdf-wire v1` framing over a shared [`Daemon`].

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::daemon::{Daemon, ServeError};
use crate::wire::{
    read_capped_line, status_fields, CampaignStatus, Request, Response, WireError, WIRE_HEADER,
};

/// How often `watch` polls the campaign it is streaming.
const WATCH_POLL: Duration = Duration::from_millis(25);

/// State shared between the server handle, the accept thread and every
/// connection thread.
#[derive(Debug)]
struct Shared {
    daemon: Arc<Daemon>,
    stopping: AtomicBool,
    /// One clone of every open connection's stream, so
    /// [`Server::stop`] can force-unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    fn finish(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        *self.done.lock().expect("server state poisoned") = true;
        self.done_cv.notify_all();
    }
}

/// A listening `pdf-wire v1` server over a [`Daemon`].
///
/// Dropping the server (or calling [`stop`](Server::stop)) closes the
/// listener and every open connection; it does **not** shut the daemon
/// down — callers decide whether the daemon outlives its socket. The
/// wire `shutdown` command does both: it gracefully stops the daemon,
/// marks the server finished, and wakes
/// [`wait_shutdown`](Server::wait_shutdown).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind.
    pub fn start(daemon: Arc<Daemon>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            daemon,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pdf-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (the real port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon this server fronts.
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.shared.daemon
    }

    /// Blocks until a wire `shutdown` command (or [`stop`](Server::stop))
    /// closes the server.
    pub fn wait_shutdown(&self) {
        let mut finished = self.shared.done.lock().expect("server state poisoned");
        while !*finished {
            finished = self
                .shared
                .done_cv
                .wait(finished)
                .expect("server state poisoned");
        }
    }

    /// Stops the server: closes every open connection (unblocking their
    /// reader threads), stops accepting, and joins the accept thread.
    /// Idempotent; does not touch the daemon.
    pub fn stop(&mut self) {
        self.shared.finish();
        // Force-close open connections so their threads stop waiting on
        // clients that may never send another byte.
        for s in self
            .shared
            .conns
            .lock()
            .expect("server state poisoned")
            .drain(..)
        {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            h.join().expect("accept thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("server state poisoned")
                .push(clone);
        }
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("pdf-serve-conn".into())
                .spawn(move || {
                    let _ = serve_connection(stream, &shared);
                })
                .expect("spawn connection thread"),
        );
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate handles.
        threads.retain(|h| !h.is_finished());
    }
    // Streams were force-closed by stop(); the threads are unblocked.
    for h in threads {
        let _ = h.join();
    }
}

fn err_response(e: &ServeError) -> Response {
    let code = match e {
        ServeError::NoSuchCampaign(_) => "no-such-campaign",
        ServeError::Illegal(_) => "illegal-transition",
        ServeError::UnknownSubject(_) => "unknown-subject",
        ServeError::BadSpec(_) => "bad-spec",
        ServeError::Stopping => "stopping",
    };
    Response::Err {
        code: code.to_string(),
        msg: e.to_string(),
    }
}

fn phase_ok(id: u64, result: Result<crate::lifecycle::Phase, ServeError>) -> Response {
    match result {
        Ok(phase) => Response::Ok(vec![
            ("id".to_string(), id.to_string()),
            ("state".to_string(), phase.name().to_string()),
        ]),
        Err(e) => err_response(&e),
    }
}

fn status_or_missing(daemon: &Daemon, id: u64) -> Result<CampaignStatus, Response> {
    daemon
        .status(id)
        .ok_or_else(|| err_response(&ServeError::NoSuchCampaign(id)))
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let daemon = &*shared.daemon;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{WIRE_HEADER}")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_capped_line(&mut reader) {
            Ok(line) => line,
            Err(WireError::UnexpectedEof) => return Ok(()),
            Err(e) => {
                let resp = Response::Err {
                    code: "bad-request".to_string(),
                    msg: e.to_string(),
                };
                writer.write_all(resp.encode().as_bytes())?;
                writer.flush()?;
                return Ok(());
            }
        };
        let request = match Request::decode(&line) {
            Ok(req) => req,
            Err(WireError::Empty) => continue,
            Err(e) => {
                let resp = Response::Err {
                    code: "bad-request".to_string(),
                    msg: e.to_string(),
                };
                writer.write_all(resp.encode().as_bytes())?;
                writer.flush()?;
                continue;
            }
        };
        let mut quit = false;
        match request {
            Request::Submit(spec) => {
                let resp = match daemon.submit(spec) {
                    Ok(id) => Response::Ok(vec![("id".to_string(), id.to_string())]),
                    Err(e) => err_response(&e),
                };
                writer.write_all(resp.encode().as_bytes())?;
            }
            Request::Status { id } => {
                let resp = match status_or_missing(daemon, id) {
                    Ok(s) => Response::Ok(status_fields(&s)),
                    Err(resp) => resp,
                };
                writer.write_all(resp.encode().as_bytes())?;
            }
            Request::Pause { id } => {
                writer.write_all(phase_ok(id, daemon.pause(id)).encode().as_bytes())?;
            }
            Request::Resume { id } => {
                writer.write_all(phase_ok(id, daemon.resume(id)).encode().as_bytes())?;
            }
            Request::Cancel { id } => {
                writer.write_all(phase_ok(id, daemon.cancel(id)).encode().as_bytes())?;
            }
            Request::List => {
                let all = daemon.list();
                for s in &all {
                    writer.write_all(Response::Item(status_fields(s)).encode().as_bytes())?;
                }
                let end = Response::End(vec![("n".to_string(), all.len().to_string())]);
                writer.write_all(end.encode().as_bytes())?;
            }
            Request::Watch { id } => match status_or_missing(daemon, id) {
                Err(resp) => writer.write_all(resp.encode().as_bytes())?,
                Ok(mut last) => {
                    writer.write_all(Response::Item(status_fields(&last)).encode().as_bytes())?;
                    writer.flush()?;
                    while !last.phase.is_terminal() && !shared.stopping.load(Ordering::SeqCst) {
                        std::thread::sleep(WATCH_POLL);
                        let now = match status_or_missing(daemon, id) {
                            Ok(s) => s,
                            Err(_) => break,
                        };
                        if now != last {
                            last = now;
                            if !last.phase.is_terminal() {
                                writer.write_all(
                                    Response::Item(status_fields(&last)).encode().as_bytes(),
                                )?;
                                writer.flush()?;
                            }
                        }
                    }
                    writer.write_all(Response::End(status_fields(&last)).encode().as_bytes())?;
                }
            },
            Request::Metrics => {
                let text = daemon.registry().snapshot().encode();
                let lines = text.lines().map(str::to_string).collect();
                writer.write_all(Response::Blob(lines).encode().as_bytes())?;
            }
            Request::Ping => {
                let resp = Response::Ok(vec![("pong".to_string(), "1".to_string())]);
                writer.write_all(resp.encode().as_bytes())?;
            }
            Request::Shutdown => {
                let resp = Response::Ok(vec![("stopping".to_string(), "1".to_string())]);
                writer.write_all(resp.encode().as_bytes())?;
                writer.flush()?;
                daemon.shutdown();
                shared.finish();
                quit = true;
            }
        }
        writer.flush()?;
        if quit {
            return Ok(());
        }
    }
}

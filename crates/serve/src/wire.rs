//! The `pdf-wire v1` line protocol.
//!
//! Zero-dependency, text-framed TCP, in the same `tag k=v ...` style as
//! the workspace's other codecs (`pdf-journal`, `pdf-checkpoint`,
//! `pdf-metrics`). The server greets every connection with the
//! [`WIRE_HEADER`] line; after that the client sends one
//! [`Request`] per line and reads one [`Response`] per request —
//! single-line for `ok`/`err`, multi-line for `item*`+`end` streams
//! (`list`, `watch`) and `blob` payloads (`metrics`).
//!
//! Framing rules:
//!
//! - every frame is one `\n`-terminated line of at most [`MAX_LINE`]
//!   bytes; longer lines are rejected, never buffered unboundedly;
//! - keys and values are whitespace-free tokens (no `=` in keys); the
//!   `msg` key is the exception — it must come last and captures the
//!   rest of the line verbatim;
//! - decoding rejects unknown tags, unknown keys, duplicate keys and
//!   malformed values with a [`WireError`], never a panic (fuzzed by
//!   the codec property tests).

use std::fmt;
use std::io::BufRead;

use pdf_core::ExecMode;

use crate::lifecycle::Phase;

/// The protocol greeting/version line.
pub const WIRE_HEADER: &str = "pdf-wire v1";

/// Hard cap on a single protocol line, in bytes. Defends the daemon
/// against unframed garbage on the socket.
pub const MAX_LINE: usize = 64 * 1024;

/// Why a frame could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line was empty where a frame was required.
    Empty,
    /// The line exceeded [`MAX_LINE`] bytes.
    TooLong(usize),
    /// The request verb is not part of `pdf-wire v1`.
    UnknownCommand(String),
    /// A required key was missing.
    Missing(String),
    /// A key appeared that the frame does not define, or twice.
    UnexpectedKey(String),
    /// A value failed to parse.
    BadValue {
        /// The key whose value was malformed.
        key: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A campaign specification failed validation.
    BadSpec(String),
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
    /// The read timed out before a complete frame arrived (the
    /// server's slowloris defense surfaces this, as does a client-side
    /// socket read timeout).
    Timeout,
    /// A response frame was malformed.
    BadResponse(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty frame"),
            WireError::TooLong(n) => write!(f, "frame of {n} bytes exceeds {MAX_LINE}"),
            WireError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            WireError::Missing(key) => write!(f, "missing key {key:?}"),
            WireError::UnexpectedKey(key) => write!(f, "unexpected or duplicate key {key:?}"),
            WireError::BadValue { key, reason } => write!(f, "bad value for {key:?}: {reason}"),
            WireError::BadSpec(what) => write!(f, "bad campaign spec: {what}"),
            WireError::UnexpectedEof => write!(f, "connection closed mid-frame"),
            WireError::Timeout => write!(f, "read timed out mid-frame"),
            WireError::BadResponse(what) => write!(f, "bad response frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A campaign submission: everything the daemon needs to build (and,
/// after a restart, rebuild) the underlying [`pdf_fleet::Fleet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Subject name ([`pdf_subjects::by_name`]).
    pub subject: String,
    /// Base RNG seed (shard `i` runs `seed + i`).
    pub seed: u64,
    /// Total execution budget across all shards.
    pub execs: u64,
    /// Worker shards inside the campaign (≥ 1; the daemon runs the
    /// shards serially inside one pool slot).
    pub shards: u64,
    /// Per-shard executions per epoch slice (≥ 1). One slice is the
    /// daemon's scheduling quantum and checkpoint interval.
    pub sync_every: u64,
    /// Instrumentation tiering for the campaign's executions.
    pub exec_mode: ExecMode,
    /// Advisory completion deadline in milliseconds, measured by the
    /// submitter (`loadgen` asserts against it); the scheduler serves
    /// nearer deadlines first.
    pub deadline_ms: Option<u64>,
    /// Client-chosen idempotency key (`key=` on the wire). A `submit`
    /// whose key matches a campaign the daemon already holds returns
    /// the *original* campaign id instead of forking a duplicate — the
    /// safe-retry contract for clients that time out mid-submit.
    pub idempotency_key: Option<String>,
}

/// The default epoch-slice length for a budget: an eighth of the
/// per-shard budget, clamped to at least 50 executions.
pub fn default_sync_every(execs: u64, shards: u64) -> u64 {
    let per_shard = (execs / shards.max(1)).max(1);
    (per_shard / 8).clamp(50, per_shard.max(50))
}

impl CampaignSpec {
    /// A single-shard, full-instrumentation spec with the default slice
    /// length and no deadline.
    pub fn new(subject: &str, seed: u64, execs: u64) -> CampaignSpec {
        CampaignSpec {
            subject: subject.to_string(),
            seed,
            execs,
            shards: 1,
            sync_every: default_sync_every(execs, 1),
            exec_mode: ExecMode::Full,
            deadline_ms: None,
            idempotency_key: None,
        }
    }

    /// Checks the structural invariants the daemon relies on. Subject
    /// *existence* is checked at submission (the daemon owns the
    /// subject registry); this checks everything checkable locally.
    ///
    /// # Errors
    ///
    /// [`WireError::BadSpec`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), WireError> {
        if !is_token(&self.subject) {
            return Err(WireError::BadSpec(format!(
                "subject {:?} is not a bare token",
                self.subject
            )));
        }
        if self.execs == 0 {
            return Err(WireError::BadSpec("execs must be at least 1".into()));
        }
        if self.shards == 0 {
            return Err(WireError::BadSpec("shards must be at least 1".into()));
        }
        if self.sync_every == 0 {
            return Err(WireError::BadSpec("sync must be at least 1".into()));
        }
        if let Some(key) = &self.idempotency_key {
            if !is_token(key) {
                return Err(WireError::BadSpec(format!(
                    "idempotency key {key:?} is not a bare token"
                )));
            }
        }
        Ok(())
    }
}

/// A point-in-time view of one campaign, as served over `status`,
/// `list` and `watch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Campaign id (daemon-assigned, monotonically increasing).
    pub id: u64,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// The submitted specification.
    pub spec: CampaignSpec,
    /// Fleet synchronization epochs completed.
    pub epoch: u64,
    /// Subject executions spent so far.
    pub spent: u64,
    /// Distinct valid inputs discovered so far.
    pub valid: u64,
    /// Final [`pdf_fleet::FleetReport::digest`], present once `Done`.
    pub digest: Option<u64>,
    /// Final merged-coverage digest, present once `Done`.
    pub coverage: Option<u64>,
    /// Failure description, present once `Failed`.
    pub error: Option<String>,
}

/// A client request, one line on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a new campaign; answered with `ok id=N`.
    Submit(CampaignSpec),
    /// One campaign's status; answered with `ok <status fields>`.
    Status {
        /// Campaign id.
        id: u64,
    },
    /// Request a pause; answered with `ok id=N state=S`.
    Pause {
        /// Campaign id.
        id: u64,
    },
    /// Resume a paused campaign; answered with `ok id=N state=S`.
    Resume {
        /// Campaign id.
        id: u64,
    },
    /// Cancel a campaign; answered with `ok id=N state=S`.
    Cancel {
        /// Campaign id.
        id: u64,
    },
    /// All campaigns; answered with `item` frames then `end n=K`.
    List,
    /// Stream progress ticks (`item` frames) until the campaign is
    /// terminal, then `end <status fields>`.
    Watch {
        /// Campaign id.
        id: u64,
    },
    /// The daemon's `pdf-metrics v1` snapshot; answered with a `blob`.
    Metrics,
    /// Liveness probe; answered with `ok pong=1`.
    Ping,
    /// Graceful daemon shutdown (checkpoint everything, then exit);
    /// answered with `ok stopping=1` before the daemon quiesces.
    Shutdown,
}

/// A server response. `Ok`/`Err`/`Item`/`End` are one line each;
/// `Blob` is a `blob n=K` line followed by `K` payload lines, each
/// prefixed with `|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success, with result fields.
    Ok(Vec<(String, String)>),
    /// One element of a streamed result (`list` rows, `watch` ticks).
    Item(Vec<(String, String)>),
    /// Terminates a stream, with summary fields.
    End(Vec<(String, String)>),
    /// A multi-line text payload (e.g. a metrics snapshot).
    Blob(Vec<String>),
    /// Failure, with a machine code and human message.
    Err {
        /// Stable kebab-case error code (`no-such-campaign`, ...).
        code: String,
        /// For retryable failures (`overloaded`): how long the client
        /// should wait before trying again, in milliseconds.
        retry_after_ms: Option<u64>,
        /// Human-readable message (rest of the line, may contain
        /// spaces).
        msg: String,
    },
}

impl Response {
    /// A plain, non-retryable `err` frame.
    pub fn err(code: &str, msg: impl Into<String>) -> Response {
        Response::Err {
            code: code.to_string(),
            retry_after_ms: None,
            msg: msg.into(),
        }
    }
}

/// Whether `s` can be framed as a bare `k=v` value token.
pub fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| !c.is_whitespace() && c != '=' && c != '|')
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Full => "full",
        ExecMode::Fast => "fast",
        ExecMode::Tiered => "tiered",
    }
}

/// Parses an execution-mode name, case-insensitively (`full`, `FAST`,
/// `Tiered` all work — the wire analog of `evalrunner --exec-mode`).
pub fn parse_mode(s: &str) -> Result<ExecMode, WireError> {
    match s.to_ascii_lowercase().as_str() {
        "full" => Ok(ExecMode::Full),
        "fast" => Ok(ExecMode::Fast),
        "tiered" => Ok(ExecMode::Tiered),
        _ => Err(WireError::BadValue {
            key: "mode".into(),
            reason: format!("expected one of full, fast, tiered; got {s:?}"),
        }),
    }
}

/// Splits `rest` into `k=v` pairs, handling the trailing rest-of-line
/// `msg=` key. Rejects keys not in `allowed` and duplicates.
pub(crate) fn parse_fields(
    rest: &str,
    allowed: &[&str],
) -> Result<Vec<(String, String)>, WireError> {
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut remaining = rest.trim_start();
    while !remaining.is_empty() {
        let (key, after_key) = remaining
            .split_once('=')
            .ok_or_else(|| WireError::BadValue {
                key: remaining.split_whitespace().next().unwrap_or("").into(),
                reason: "expected k=v".into(),
            })?;
        if key.chars().any(|c| c.is_whitespace()) || key.is_empty() {
            return Err(WireError::BadValue {
                key: key.into(),
                reason: "malformed key".into(),
            });
        }
        if !allowed.contains(&key) {
            return Err(WireError::UnexpectedKey(key.into()));
        }
        if fields.iter().any(|(k, _)| k == key) {
            return Err(WireError::UnexpectedKey(key.into()));
        }
        let value;
        if key == "msg" {
            // msg consumes the rest of the line verbatim.
            value = after_key.to_string();
            remaining = "";
        } else {
            match after_key.split_once(char::is_whitespace) {
                Some((v, rest)) => {
                    value = v.to_string();
                    remaining = rest.trim_start();
                }
                None => {
                    value = after_key.to_string();
                    remaining = "";
                }
            }
            if value.is_empty() {
                return Err(WireError::BadValue {
                    key: key.into(),
                    reason: "empty value".into(),
                });
            }
        }
        fields.push((key.to_string(), value));
    }
    Ok(fields)
}

fn lookup<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn require<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, WireError> {
    lookup(fields, key).ok_or_else(|| WireError::Missing(key.into()))
}

fn parse_u64(key: &str, v: &str) -> Result<u64, WireError> {
    v.parse().map_err(|_| WireError::BadValue {
        key: key.into(),
        reason: format!("expected an integer, got {v:?}"),
    })
}

fn parse_id(fields: &[(String, String)]) -> Result<u64, WireError> {
    parse_u64("id", require(fields, "id")?)
}

fn check_line(line: &str) -> Result<&str, WireError> {
    if line.len() > MAX_LINE {
        return Err(WireError::TooLong(line.len()));
    }
    let line = line.trim_end_matches(['\r', '\n']);
    if line.trim().is_empty() {
        return Err(WireError::Empty);
    }
    Ok(line)
}

impl Request {
    /// Renders the request as its single protocol line (no newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Submit(spec) => {
                let mut line = format!(
                    "submit subject={} seed={} execs={} shards={} sync={} mode={}",
                    spec.subject,
                    spec.seed,
                    spec.execs,
                    spec.shards,
                    spec.sync_every,
                    mode_name(spec.exec_mode),
                );
                if let Some(d) = spec.deadline_ms {
                    line.push_str(&format!(" deadline-ms={d}"));
                }
                if let Some(k) = &spec.idempotency_key {
                    line.push_str(&format!(" key={k}"));
                }
                line
            }
            Request::Status { id } => format!("status id={id}"),
            Request::Pause { id } => format!("pause id={id}"),
            Request::Resume { id } => format!("resume id={id}"),
            Request::Cancel { id } => format!("cancel id={id}"),
            Request::List => "list".to_string(),
            Request::Watch { id } => format!("watch id={id}"),
            Request::Metrics => "metrics".to_string(),
            Request::Ping => "ping".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        }
    }

    /// Parses one protocol line into a request.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; garbage and truncated frames are rejected,
    /// never panicked on.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let line = check_line(line)?;
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        let id_only =
            |rest: &str| -> Result<u64, WireError> { parse_id(&parse_fields(rest, &["id"])?) };
        let bare = |rest: &str, verb: &str| -> Result<(), WireError> {
            if rest.trim().is_empty() {
                Ok(())
            } else {
                Err(WireError::BadValue {
                    key: verb.into(),
                    reason: "takes no arguments".into(),
                })
            }
        };
        match verb {
            "submit" => {
                let fields = parse_fields(
                    rest,
                    &[
                        "subject",
                        "seed",
                        "execs",
                        "shards",
                        "sync",
                        "mode",
                        "deadline-ms",
                        "key",
                    ],
                )?;
                let subject = require(&fields, "subject")?.to_string();
                let seed = parse_u64("seed", require(&fields, "seed")?)?;
                let execs = parse_u64("execs", require(&fields, "execs")?)?;
                let shards = match lookup(&fields, "shards") {
                    Some(v) => parse_u64("shards", v)?,
                    None => 1,
                };
                let sync_every = match lookup(&fields, "sync") {
                    Some(v) => parse_u64("sync", v)?,
                    None => default_sync_every(execs, shards),
                };
                let exec_mode = match lookup(&fields, "mode") {
                    Some(v) => parse_mode(v)?,
                    None => ExecMode::Full,
                };
                let deadline_ms = match lookup(&fields, "deadline-ms") {
                    Some(v) => Some(parse_u64("deadline-ms", v)?),
                    None => None,
                };
                let idempotency_key = lookup(&fields, "key").map(str::to_string);
                let spec = CampaignSpec {
                    subject,
                    seed,
                    execs,
                    shards,
                    sync_every,
                    exec_mode,
                    deadline_ms,
                    idempotency_key,
                };
                spec.validate()?;
                Ok(Request::Submit(spec))
            }
            "status" => Ok(Request::Status { id: id_only(rest)? }),
            "pause" => Ok(Request::Pause { id: id_only(rest)? }),
            "resume" => Ok(Request::Resume { id: id_only(rest)? }),
            "cancel" => Ok(Request::Cancel { id: id_only(rest)? }),
            "watch" => Ok(Request::Watch { id: id_only(rest)? }),
            "list" => bare(rest, "list").map(|()| Request::List),
            "metrics" => bare(rest, "metrics").map(|()| Request::Metrics),
            "ping" => bare(rest, "ping").map(|()| Request::Ping),
            "shutdown" => bare(rest, "shutdown").map(|()| Request::Shutdown),
            other => Err(WireError::UnknownCommand(other.to_string())),
        }
    }
}

fn encode_fields(tag: &str, fields: &[(String, String)]) -> String {
    let mut line = tag.to_string();
    for (i, (k, v)) in fields.iter().enumerate() {
        debug_assert!(is_token(k), "unencodable key {k:?}");
        // A `msg` value is the rest of the line, so it may only close it.
        debug_assert!(k != "msg" || i + 1 == fields.len(), "msg key must be last");
        debug_assert!(k == "msg" || is_token(v), "unencodable value {v:?}");
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    line
}

/// Every key a status/ok/item/end frame may carry.
pub(crate) const RESPONSE_KEYS: [&str; 19] = [
    "id",
    "state",
    "subject",
    "seed",
    "execs",
    "shards",
    "sync",
    "mode",
    "deadline-ms",
    "key",
    "epoch",
    "spent",
    "valid",
    "digest",
    "coverage",
    "n",
    "pong",
    "stopping",
    "msg",
];

impl Response {
    /// Renders the response as its wire bytes, including the trailing
    /// newline (and the payload lines of a `blob`).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok(fields) => encode_fields("ok", fields) + "\n",
            Response::Item(fields) => encode_fields("item", fields) + "\n",
            Response::End(fields) => encode_fields("end", fields) + "\n",
            Response::Err {
                code,
                retry_after_ms,
                msg,
            } => {
                debug_assert!(is_token(code), "unencodable error code {code:?}");
                match retry_after_ms {
                    Some(ms) => format!("err code={code} retry-after-ms={ms} msg={msg}\n"),
                    None => format!("err code={code} msg={msg}\n"),
                }
            }
            Response::Blob(lines) => {
                let mut out = format!("blob n={}\n", lines.len());
                for l in lines {
                    debug_assert!(!l.contains('\n'), "blob line contains newline");
                    out.push('|');
                    out.push_str(l);
                    out.push('\n');
                }
                out
            }
        }
    }

    /// Reads one response frame from `reader` (one line, plus payload
    /// lines for a `blob`).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] on a closed connection, any other
    /// [`WireError`] on malformed frames. I/O errors surface as
    /// [`WireError::BadResponse`].
    pub fn read(reader: &mut impl BufRead) -> Result<Response, WireError> {
        let line = read_capped_line(reader)?;
        let line = check_line(&line)?;
        let (tag, rest) = match line.split_once(char::is_whitespace) {
            Some((t, r)) => (t, r),
            None => (line, ""),
        };
        let keys: Vec<&str> = RESPONSE_KEYS.to_vec();
        match tag {
            "ok" => Ok(Response::Ok(parse_fields(rest, &keys)?)),
            "item" => Ok(Response::Item(parse_fields(rest, &keys)?)),
            "end" => Ok(Response::End(parse_fields(rest, &keys)?)),
            "err" => {
                let fields = parse_fields(rest, &["code", "retry-after-ms", "msg"])?;
                Ok(Response::Err {
                    code: require(&fields, "code")?.to_string(),
                    retry_after_ms: lookup(&fields, "retry-after-ms")
                        .map(|v| parse_u64("retry-after-ms", v))
                        .transpose()?,
                    msg: lookup(&fields, "msg").unwrap_or("").to_string(),
                })
            }
            "blob" => {
                let fields = parse_fields(rest, &["n"])?;
                let n = parse_u64("n", require(&fields, "n")?)?;
                if n > 1_000_000 {
                    return Err(WireError::BadValue {
                        key: "n".into(),
                        reason: format!("blob of {n} lines refused"),
                    });
                }
                let mut lines = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let payload = read_capped_line(reader)?;
                    let payload = payload.trim_end_matches(['\r', '\n']);
                    let body = payload.strip_prefix('|').ok_or_else(|| {
                        WireError::BadResponse("blob payload line missing | prefix".into())
                    })?;
                    lines.push(body.to_string());
                }
                Ok(Response::Blob(lines))
            }
            other => Err(WireError::BadResponse(format!("unknown tag {other:?}"))),
        }
    }
}

/// Reads one line, refusing to buffer more than [`MAX_LINE`] bytes.
pub fn read_capped_line<R: BufRead>(reader: &mut R) -> Result<String, WireError> {
    let mut buf = Vec::new();
    let mut limited = <&mut R as std::io::Read>::take(reader, (MAX_LINE + 2) as u64);
    let n = limited.read_until(b'\n', &mut buf).map_err(|e| {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout,
            // A connection that dies mid-frame is a (dirty) EOF, not a
            // protocol violation — callers retry or close, not complain.
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => WireError::UnexpectedEof,
            _ => WireError::BadResponse(format!("io: {e}")),
        }
    })?;
    if n == 0 {
        return Err(WireError::UnexpectedEof);
    }
    if buf.len() > MAX_LINE {
        return Err(WireError::TooLong(buf.len()));
    }
    // EOF mid-frame: a torn write delivered a prefix with no newline.
    // That prefix must never parse as a complete frame — `ok id=` cut
    // from `ok id=35` is a *different*, wrong message.
    if buf.last() != Some(&b'\n') {
        return Err(WireError::UnexpectedEof);
    }
    String::from_utf8(buf).map_err(|_| WireError::BadResponse("frame is not UTF-8".into()))
}

/// Renders a status as response fields, the payload of `ok` (status),
/// `item` (list rows, watch ticks) and `end` (watch terminations).
pub fn status_fields(s: &CampaignStatus) -> Vec<(String, String)> {
    let mut fields = vec![
        ("id".to_string(), s.id.to_string()),
        ("state".to_string(), s.phase.name().to_string()),
        ("subject".to_string(), s.spec.subject.clone()),
        ("seed".to_string(), s.spec.seed.to_string()),
        ("execs".to_string(), s.spec.execs.to_string()),
        ("shards".to_string(), s.spec.shards.to_string()),
        ("sync".to_string(), s.spec.sync_every.to_string()),
        ("mode".to_string(), mode_name(s.spec.exec_mode).to_string()),
        ("epoch".to_string(), s.epoch.to_string()),
        ("spent".to_string(), s.spent.to_string()),
        ("valid".to_string(), s.valid.to_string()),
    ];
    if let Some(d) = s.spec.deadline_ms {
        fields.push(("deadline-ms".to_string(), d.to_string()));
    }
    if let Some(k) = &s.spec.idempotency_key {
        fields.push(("key".to_string(), k.clone()));
    }
    if let Some(d) = s.digest {
        fields.push(("digest".to_string(), format!("{d:016x}")));
    }
    if let Some(c) = s.coverage {
        fields.push(("coverage".to_string(), format!("{c:016x}")));
    }
    if let Some(e) = &s.error {
        // msg must come last: it captures the rest of the line.
        fields.push(("msg".to_string(), e.clone()));
    }
    fields
}

/// Reconstructs a status from response fields (the inverse of
/// [`status_fields`]).
///
/// # Errors
///
/// [`WireError`] when a required field is missing or malformed.
pub fn status_from_fields(fields: &[(String, String)]) -> Result<CampaignStatus, WireError> {
    let phase = Phase::parse(require(fields, "state")?).ok_or_else(|| WireError::BadValue {
        key: "state".into(),
        reason: "unknown phase".into(),
    })?;
    let hex = |key: &str| -> Result<Option<u64>, WireError> {
        lookup(fields, key)
            .map(|v| {
                u64::from_str_radix(v, 16).map_err(|_| WireError::BadValue {
                    key: key.into(),
                    reason: format!("expected a hex digest, got {v:?}"),
                })
            })
            .transpose()
    };
    Ok(CampaignStatus {
        id: parse_id(fields)?,
        phase,
        spec: CampaignSpec {
            subject: require(fields, "subject")?.to_string(),
            seed: parse_u64("seed", require(fields, "seed")?)?,
            execs: parse_u64("execs", require(fields, "execs")?)?,
            shards: parse_u64("shards", require(fields, "shards")?)?,
            sync_every: parse_u64("sync", require(fields, "sync")?)?,
            exec_mode: parse_mode(require(fields, "mode")?)?,
            deadline_ms: lookup(fields, "deadline-ms")
                .map(|v| parse_u64("deadline-ms", v))
                .transpose()?,
            idempotency_key: lookup(fields, "key").map(str::to_string),
        },
        epoch: parse_u64("epoch", require(fields, "epoch")?)?,
        spent: parse_u64("spent", require(fields, "spent")?)?,
        valid: parse_u64("valid", require(fields, "valid")?)?,
        digest: hex("digest")?,
        coverage: hex("coverage")?,
        error: lookup(fields, "msg").map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            subject: "arith".into(),
            seed: 7,
            execs: 4000,
            shards: 2,
            sync_every: 250,
            exec_mode: ExecMode::Tiered,
            deadline_ms: Some(9000),
            idempotency_key: Some("retry-7".into()),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(spec()),
            Request::Submit(CampaignSpec::new("mjs", 1, 500)),
            Request::Status { id: 3 },
            Request::Pause { id: 0 },
            Request::Resume { id: u64::MAX },
            Request::Cancel { id: 12 },
            Request::List,
            Request::Watch { id: 4 },
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert_eq!(Request::decode(&line).unwrap(), req, "line {line:?}");
        }
    }

    #[test]
    fn submit_defaults_fill_in() {
        let req = Request::decode("submit subject=dyck seed=3 execs=800").unwrap();
        let Request::Submit(s) = req else {
            panic!("not a submit")
        };
        assert_eq!(s.shards, 1);
        assert_eq!(s.sync_every, default_sync_every(800, 1));
        assert_eq!(s.exec_mode, ExecMode::Full);
        assert_eq!(s.deadline_ms, None);
    }

    #[test]
    fn mode_is_case_insensitive() {
        for raw in ["TIERED", "Tiered", "tiered"] {
            let req = Request::decode(&format!("submit subject=a seed=1 execs=10 mode={raw}"));
            let Ok(Request::Submit(s)) = req else {
                panic!("mode {raw:?} rejected")
            };
            assert_eq!(s.exec_mode, ExecMode::Tiered);
        }
        assert!(matches!(
            Request::decode("submit subject=a seed=1 execs=10 mode=warp"),
            Err(WireError::BadValue { .. })
        ));
    }

    #[test]
    fn garbage_rejected_without_panic() {
        for bad in [
            "",
            "   ",
            "frobnicate id=1",
            "status",
            "status id=",
            "status id=abc",
            "status id=1 id=2",
            "status id=1 extra=2",
            "submit subject=a seed=1 execs=0",
            "submit subject=a seed=1 execs=5 shards=0",
            "submit subject=a seed=1 execs=5 sync=0",
            "submit seed=1 execs=5",
            "list id=1",
            "ping pong",
            "submit subject==bad seed=1 execs=5",
        ] {
            assert!(Request::decode(bad).is_err(), "accepted {bad:?}");
        }
        let long = format!("status id={}", "9".repeat(MAX_LINE));
        assert!(matches!(Request::decode(&long), Err(WireError::TooLong(_))));
    }

    #[test]
    fn responses_round_trip() {
        let status = CampaignStatus {
            id: 5,
            phase: Phase::Done,
            spec: spec(),
            epoch: 9,
            spent: 4000,
            valid: 17,
            digest: Some(0xdead_beef),
            coverage: Some(0x1234),
            error: None,
        };
        let resps = [
            Response::Ok(vec![("id".into(), "5".into())]),
            Response::Ok(status_fields(&status)),
            Response::Item(vec![
                ("id".into(), "1".into()),
                ("state".into(), "queued".into()),
            ]),
            Response::End(vec![("n".into(), "3".into())]),
            Response::Blob(vec![
                "pdf-metrics v1".into(),
                "counter name=execs value=1".into(),
            ]),
            Response::Blob(Vec::new()),
            Response::err("no-such-campaign", "campaign 99 does not exist"),
            Response::Err {
                code: "overloaded".into(),
                retry_after_ms: Some(250),
                msg: "queue is full".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            let mut reader = std::io::BufReader::new(bytes.as_bytes());
            assert_eq!(
                Response::read(&mut reader).unwrap(),
                resp,
                "bytes {bytes:?}"
            );
        }
    }

    #[test]
    fn status_fields_round_trip() {
        for phase in Phase::ALL {
            let status = CampaignStatus {
                id: 42,
                phase,
                spec: spec(),
                epoch: 3,
                spent: 1200,
                valid: 4,
                digest: phase.is_terminal().then_some(0xabcd),
                coverage: phase.is_terminal().then_some(0xef01),
                error: (phase == Phase::Failed).then(|| "epoch slice panicked: boom".to_string()),
            };
            let back = status_from_fields(&status_fields(&status)).unwrap();
            assert_eq!(back, status);
        }
    }

    #[test]
    fn truncated_blob_is_eof_not_panic() {
        let bytes = "blob n=3\n|only one line\n";
        let mut reader = std::io::BufReader::new(bytes.as_bytes());
        assert_eq!(Response::read(&mut reader), Err(WireError::UnexpectedEof));
    }
}

//! `pdf-serve` — fuzzing as a service.
//!
//! A long-lived [`Daemon`] accepts campaign submissions over the
//! zero-dependency, text-framed [`pdf-wire v1`](wire) TCP protocol and
//! multiplexes them across a bounded worker pool. Each campaign is a
//! [`pdf_fleet::Fleet`] advanced one synchronization epoch per
//! scheduler slice, its lifecycle a first-class state machine
//! ([`Phase`]/[`Event`]/[`transition`]) with every accepted transition
//! appended to an on-disk [journal] before it takes effect.
//!
//! The layers, bottom up:
//!
//! - [`lifecycle`] — the `Queued → Running ⇄ Paused → Done/Failed/
//!   Cancelled` state machine, one transition table as the single
//!   source of truth.
//! - [`wire`] — the `pdf-wire v1` codec: requests, responses, campaign
//!   specs and statuses as `tag k=v` lines.
//! - [`journal`] — the append-only `pdf-serve v1` transition journal.
//! - [`daemon`] — the scheduler: bounded worker pool, deadline-first
//!   slice dispatch, per-boundary checkpointing, restart recovery.
//! - [`server`] / [`client`] — the TCP front end and the blocking
//!   client library.
//!
//! # Durability contract
//!
//! With a state directory, disk is current at every slice boundary:
//! fleet checkpoint (`pdf-checkpoint`/`pdf-fleet` codecs), atomic
//! campaign meta, journaled transitions. Kill the daemon at any moment
//! and [`Daemon::open`] on the same directory resumes every in-flight
//! campaign; because re-running the lost epoch from its checkpoint is
//! deterministic, the final report digests are **byte-identical** to an
//! uninterrupted run. The serve soak and kill/resume tests hold this
//! contract under hundreds of interleaved campaigns.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use pdf_serve::{CampaignSpec, Daemon, DaemonConfig, Phase, ServeClient, Server};
//!
//! let daemon = Arc::new(Daemon::open(DaemonConfig::in_memory(2)).unwrap());
//! let mut server = Server::start(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
//! let mut client = ServeClient::connect(&server.local_addr().to_string()).unwrap();
//!
//! let id = client.submit(&CampaignSpec::new("arith", 1, 300)).unwrap();
//! let done = client.wait_terminal(id, Duration::from_secs(60)).unwrap();
//! assert_eq!(done.phase, Phase::Done);
//! assert!(done.digest.is_some());
//!
//! server.stop();
//! daemon.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod journal;
pub mod lifecycle;
pub mod server;
pub mod wire;

pub use client::{ClientError, RetryClient, RetryPolicy, ServeClient};
pub use daemon::{
    checkpoint_dir, fleet_config, journal_path, prev_checkpoint_dir, Daemon, DaemonConfig,
    ServeError,
};
pub use journal::{
    read_journal, recover_journal, Journal, JournalRecord, RecoveredJournal, JOURNAL_HEADER,
};
pub use lifecycle::{transition, Event, IllegalTransition, Phase, LEGAL_TRANSITIONS};
// Re-exported so clients of this crate configure chaos/backoff without
// naming pdf-chaos directly.
pub use pdf_chaos::{Backoff, FaultPlan, FaultSpec};
pub use server::{Server, ServerConfig};
pub use wire::{
    default_sync_every, parse_mode, read_capped_line, status_fields, status_from_fields,
    CampaignSpec, CampaignStatus, Request, Response, WireError, MAX_LINE, WIRE_HEADER,
};

//! The daemon's append-only transition journal (`pdf-serve v1`).
//!
//! Every lifecycle transition the daemon accepts is appended to
//! `<state_dir>/serve.journal` before it takes effect, in the same
//! header-plus-`tag k=v` line style as the workspace's other codecs:
//!
//! ```text
//! pdf-serve v1
//! txn seq=0 id=1 ev=dispatch from=queued to=running
//! txn seq=1 id=1 ev=finish from=running to=done digest=91aa50fe01c0ef2d
//! ```
//!
//! `seq` is a global monotonically increasing counter (restarts resume
//! it from the last persisted record), `digest` is attached to `finish`
//! records so final report digests are part of the durable history —
//! the kill/resume test diffs exactly these. The journal is replayable:
//! [`read_journal`] re-parses every record and the soak test re-checks
//! each one against [`transition`](crate::lifecycle::transition).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::lifecycle::{Event, Phase};
use crate::wire::WireError;

/// The journal header/version line.
pub const JOURNAL_HEADER: &str = "pdf-serve v1";

/// One journaled lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Global sequence number, dense and increasing across restarts.
    pub seq: u64,
    /// The campaign the transition applies to.
    pub id: u64,
    /// The event that fired.
    pub event: Event,
    /// Phase before the event.
    pub from: Phase,
    /// Phase after the event.
    pub to: Phase,
    /// The final fleet-report digest, present on `finish` records.
    pub digest: Option<u64>,
}

impl JournalRecord {
    fn encode(&self) -> String {
        let mut line = format!(
            "txn seq={} id={} ev={} from={} to={}",
            self.seq, self.id, self.event, self.from, self.to
        );
        if let Some(d) = self.digest {
            line.push_str(&format!(" digest={d:016x}"));
        }
        line
    }

    fn decode(line: &str) -> Result<JournalRecord, WireError> {
        let rest = line
            .strip_prefix("txn ")
            .ok_or_else(|| WireError::BadResponse(format!("not a txn record: {line:?}")))?;
        let mut seq = None;
        let mut id = None;
        let mut event = None;
        let mut from = None;
        let mut to = None;
        let mut digest = None;
        for pair in rest.split_whitespace() {
            let (k, v) = pair.split_once('=').ok_or_else(|| WireError::BadValue {
                key: pair.into(),
                reason: "expected k=v".into(),
            })?;
            let bad = |reason: &str| WireError::BadValue {
                key: k.into(),
                reason: format!("{reason}: {v:?}"),
            };
            match k {
                "seq" => seq = Some(v.parse().map_err(|_| bad("expected integer"))?),
                "id" => id = Some(v.parse().map_err(|_| bad("expected integer"))?),
                "ev" => event = Some(Event::parse(v).ok_or_else(|| bad("unknown event"))?),
                "from" => from = Some(Phase::parse(v).ok_or_else(|| bad("unknown phase"))?),
                "to" => to = Some(Phase::parse(v).ok_or_else(|| bad("unknown phase"))?),
                "digest" => {
                    digest =
                        Some(u64::from_str_radix(v, 16).map_err(|_| bad("expected hex digest"))?)
                }
                other => return Err(WireError::UnexpectedKey(other.into())),
            }
        }
        Ok(JournalRecord {
            seq: seq.ok_or_else(|| WireError::Missing("seq".into()))?,
            id: id.ok_or_else(|| WireError::Missing("id".into()))?,
            event: event.ok_or_else(|| WireError::Missing("ev".into()))?,
            from: from.ok_or_else(|| WireError::Missing("from".into()))?,
            to: to.ok_or_else(|| WireError::Missing("to".into()))?,
            digest,
        })
    }
}

/// Append-only writer over `<state_dir>/serve.journal`.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    next_seq: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, positioning `seq` after
    /// the last persisted record so restarts continue the sequence.
    ///
    /// # Errors
    ///
    /// I/O errors, or a corrupt existing journal.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let next_seq = if path.exists() {
            read_journal(path)?.last().map(|r| r.seq + 1).unwrap_or(0)
        } else {
            let mut f = File::create(path)?;
            writeln!(f, "{JOURNAL_HEADER}")?;
            f.sync_all()?;
            0
        };
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            next_seq,
        })
    }

    /// Appends one transition record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// I/O errors from the append or flush.
    pub fn append(
        &mut self,
        id: u64,
        event: Event,
        from: Phase,
        to: Phase,
        digest: Option<u64>,
    ) -> std::io::Result<JournalRecord> {
        let record = JournalRecord {
            seq: self.next_seq,
            id,
            event,
            from,
            to,
            digest,
        };
        writeln!(self.file, "{}", record.encode())?;
        self.file.flush()?;
        self.next_seq += 1;
        Ok(record)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Reads and parses the whole journal at `path`.
///
/// # Errors
///
/// I/O errors; parse failures surface as `InvalidData`.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<JournalRecord>> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut lines = BufReader::new(File::open(path)?).lines();
    match lines.next() {
        Some(Ok(h)) if h == JOURNAL_HEADER => {}
        Some(Ok(h)) => return Err(invalid(format!("bad journal header {h:?}"))),
        Some(Err(e)) => return Err(e),
        None => return Err(invalid("empty journal (missing header)".into())),
    }
    let mut records = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(JournalRecord::decode(&line).map_err(|e| invalid(e.to_string()))?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pdf-serve-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("serve.journal");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, Event::Dispatch, Phase::Queued, Phase::Running, None)
            .unwrap();
        j.append(1, Event::Finish, Phase::Running, Phase::Done, Some(0xabcd))
            .unwrap();
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].digest, Some(0xabcd));
        assert_eq!(records[1].event, Event::Finish);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_sequence() {
        let dir = tmpdir("seq");
        let path = dir.join("serve.journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(7, Event::Dispatch, Phase::Queued, Phase::Running, None)
                .unwrap();
            assert_eq!(j.next_seq(), 1);
        }
        {
            let mut j = Journal::open(&path).unwrap();
            assert_eq!(j.next_seq(), 1);
            let r = j
                .append(7, Event::Pause, Phase::Running, Phase::Paused, None)
                .unwrap();
            assert_eq!(r.seq, 1);
        }
        let records = read_journal(&path).unwrap();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), [0, 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_rejected() {
        let dir = tmpdir("bad");
        let path = dir.join("serve.journal");
        std::fs::write(
            &path,
            "pdf-serve v1\ntxn seq=0 id=1 ev=warp from=queued to=running\n",
        )
        .unwrap();
        assert!(read_journal(&path).is_err());
        std::fs::write(&path, "not-a-journal\n").unwrap();
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The daemon's append-only transition journal (`pdf-serve v1`).
//!
//! Every lifecycle transition the daemon accepts is appended to
//! `<state_dir>/serve.journal` before it takes effect, in the same
//! header-plus-`tag k=v` line style as the workspace's other codecs:
//!
//! ```text
//! pdf-serve v1
//! txn seq=0 id=1 ev=dispatch from=queued to=running
//! txn seq=1 id=1 ev=finish from=running to=done digest=91aa50fe01c0ef2d
//! ```
//!
//! `seq` is a global monotonically increasing counter (restarts resume
//! it from the last persisted record), `digest` is attached to `finish`
//! records so final report digests are part of the durable history —
//! the kill/resume test diffs exactly these. The journal is replayable:
//! [`read_journal`] re-parses every record and the soak test re-checks
//! each one against [`transition`](crate::lifecycle::transition).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pdf_chaos::{ChaosWriter, FaultPlan, OpKind};

use crate::lifecycle::{Event, Phase};
use crate::wire::WireError;

/// The journal header/version line.
pub const JOURNAL_HEADER: &str = "pdf-serve v1";

/// One journaled lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Global sequence number, dense and increasing across restarts.
    pub seq: u64,
    /// The campaign the transition applies to.
    pub id: u64,
    /// The event that fired.
    pub event: Event,
    /// Phase before the event.
    pub from: Phase,
    /// Phase after the event.
    pub to: Phase,
    /// The final fleet-report digest, present on `finish` records.
    pub digest: Option<u64>,
}

impl JournalRecord {
    fn encode(&self) -> String {
        let mut line = format!(
            "txn seq={} id={} ev={} from={} to={}",
            self.seq, self.id, self.event, self.from, self.to
        );
        if let Some(d) = self.digest {
            line.push_str(&format!(" digest={d:016x}"));
        }
        line
    }

    fn decode(line: &str) -> Result<JournalRecord, WireError> {
        let rest = line
            .strip_prefix("txn ")
            .ok_or_else(|| WireError::BadResponse(format!("not a txn record: {line:?}")))?;
        let mut seq = None;
        let mut id = None;
        let mut event = None;
        let mut from = None;
        let mut to = None;
        let mut digest = None;
        for pair in rest.split_whitespace() {
            let (k, v) = pair.split_once('=').ok_or_else(|| WireError::BadValue {
                key: pair.into(),
                reason: "expected k=v".into(),
            })?;
            let bad = |reason: &str| WireError::BadValue {
                key: k.into(),
                reason: format!("{reason}: {v:?}"),
            };
            match k {
                "seq" => seq = Some(v.parse().map_err(|_| bad("expected integer"))?),
                "id" => id = Some(v.parse().map_err(|_| bad("expected integer"))?),
                "ev" => event = Some(Event::parse(v).ok_or_else(|| bad("unknown event"))?),
                "from" => from = Some(Phase::parse(v).ok_or_else(|| bad("unknown phase"))?),
                "to" => to = Some(Phase::parse(v).ok_or_else(|| bad("unknown phase"))?),
                "digest" => {
                    digest =
                        Some(u64::from_str_radix(v, 16).map_err(|_| bad("expected hex digest"))?)
                }
                other => return Err(WireError::UnexpectedKey(other.into())),
            }
        }
        Ok(JournalRecord {
            seq: seq.ok_or_else(|| WireError::Missing("seq".into()))?,
            id: id.ok_or_else(|| WireError::Missing("id".into()))?,
            event: event.ok_or_else(|| WireError::Missing("ev".into()))?,
            from: from.ok_or_else(|| WireError::Missing("from".into()))?,
            to: to.ok_or_else(|| WireError::Missing("to".into()))?,
            digest,
        })
    }
}

/// Append-only writer over `<state_dir>/serve.journal`.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, positioning `seq` after
    /// the last persisted record so restarts continue the sequence.
    ///
    /// # Errors
    ///
    /// I/O errors, or a corrupt existing journal (restart paths that
    /// must survive a torn tail go through [`recover_journal`] first).
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let next_seq = if path.exists() {
            read_journal(path)?.last().map(|r| r.seq + 1).unwrap_or(0)
        } else {
            let mut f = File::create(path)?;
            writeln!(f, "{JOURNAL_HEADER}")?;
            f.sync_all()?;
            0
        };
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            next_seq,
            faults: None,
        })
    }

    /// Installs a fault plan: every subsequent [`append`](Self::append)
    /// consults it for injected torn writes, ENOSPC and delays.
    pub fn set_faults(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// Appends one transition record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// I/O errors from the append or flush — including injected ones
    /// when a fault plan is installed. A failed append rolls the file
    /// back to its pre-append length (best effort), so a *live* daemon
    /// never leaves a torn line mid-journal; torn tails come only from
    /// hard kills, and [`recover_journal`] quarantines those on the
    /// next restart. `seq` is not consumed on failure, so the salvaged
    /// history stays gap-free.
    pub fn append(
        &mut self,
        id: u64,
        event: Event,
        from: Phase,
        to: Phase,
        digest: Option<u64>,
    ) -> std::io::Result<JournalRecord> {
        let record = JournalRecord {
            seq: self.next_seq,
            id,
            event,
            from,
            to,
            digest,
        };
        let rollback_to = self.file.metadata()?.len();
        let mut w = ChaosWriter::new(&mut self.file, self.faults.clone(), OpKind::JournalWrite);
        let wrote = writeln!(w, "{}", record.encode()).and_then(|()| self.file.flush());
        if let Err(e) = wrote {
            let _ = self.file.set_len(rollback_to);
            return Err(e);
        }
        self.next_seq += 1;
        Ok(record)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Reads and parses the whole journal at `path`.
///
/// # Errors
///
/// I/O errors; parse failures surface as `InvalidData`.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<JournalRecord>> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut lines = BufReader::new(File::open(path)?).lines();
    match lines.next() {
        Some(Ok(h)) if h == JOURNAL_HEADER => {}
        Some(Ok(h)) => return Err(invalid(format!("bad journal header {h:?}"))),
        Some(Err(e)) => return Err(e),
        None => return Err(invalid("empty journal (missing header)".into())),
    }
    let mut records = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(JournalRecord::decode(&line).map_err(|e| invalid(e.to_string()))?);
    }
    Ok(records)
}

/// `<path><suffix>`, appended to the full file name (unlike
/// `Path::with_extension`, which would *replace* `.journal`).
pub(crate) fn append_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// What [`recover_journal`] salvaged from a possibly-torn journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJournal {
    /// The gap-free legal prefix: every record up to (not including)
    /// the first unparseable or sequence-breaking line.
    pub records: Vec<JournalRecord>,
    /// Lines cut from the journal and appended to the quarantine file
    /// (zero when the journal was clean).
    pub quarantined_lines: usize,
    /// Where the torn tail went (`<journal>.quarantine`), present only
    /// when something was quarantined.
    pub quarantine_path: Option<PathBuf>,
}

/// Restart-safe journal read: salvages the longest gap-free prefix of
/// legal records and quarantines everything after it.
///
/// A hard kill mid-append leaves a torn final line; a torn storage
/// write can leave worse. Instead of refusing to restart (what
/// [`read_journal`] does), this cuts the journal at the first
/// unparseable line *or* the first sequence gap, appends the cut tail
/// to `<path>.quarantine` for post-mortems, and rewrites the journal
/// (tmp plus rename) to exactly the salvaged prefix — after which
/// [`Journal::open`] succeeds and continues the sequence densely.
///
/// A missing file recovers to an empty journal. An unreadable *header*
/// quarantines the entire file.
///
/// # Errors
///
/// Only real I/O errors (reading the journal, writing the quarantine
/// or the rewrite); corruption itself is never an error here.
pub fn recover_journal(path: &Path) -> std::io::Result<RecoveredJournal> {
    if !path.exists() {
        return Ok(RecoveredJournal {
            records: Vec::new(),
            quarantined_lines: 0,
            quarantine_path: None,
        });
    }
    // Read as raw bytes: a torn tail can hold arbitrary garbage, and
    // "not UTF-8" is corruption to quarantine, not an I/O failure.
    let bytes = std::fs::read(path)?;
    let mut lines: Vec<String> = bytes
        .split(|&b| b == b'\n')
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect();
    if lines.last().is_some_and(String::is_empty) {
        lines.pop(); // the split artifact after a trailing newline
    }
    let header_ok = lines.first().is_some_and(|h| h == JOURNAL_HEADER);
    let mut records = Vec::new();
    // Index of the first line that does NOT belong to the legal prefix.
    let mut cut = if header_ok { 1 } else { 0 };
    if header_ok {
        for (idx, line) in lines.iter().enumerate().skip(1) {
            if line.trim().is_empty() {
                cut = idx + 1;
                continue;
            }
            match JournalRecord::decode(line) {
                Ok(r) if r.seq == records.len() as u64 => {
                    records.push(r);
                    cut = idx + 1;
                }
                _ => break,
            }
        }
    }
    let tail: Vec<&String> = lines.iter().skip(cut).collect();
    let mut quarantine_path = None;
    if !tail.is_empty() {
        let qpath = append_suffix(path, ".quarantine");
        let mut q = OpenOptions::new().create(true).append(true).open(&qpath)?;
        for line in &tail {
            writeln!(q, "{line}")?;
        }
        q.sync_all()?;
        quarantine_path = Some(qpath);
        // Rewrite the journal to the salvaged prefix, atomically.
        let tmp = append_suffix(path, ".tmp");
        {
            let mut f = File::create(&tmp)?;
            writeln!(f, "{JOURNAL_HEADER}")?;
            for r in &records {
                writeln!(f, "{}", r.encode())?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
    }
    Ok(RecoveredJournal {
        records,
        quarantined_lines: tail.len(),
        quarantine_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pdf-serve-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("serve.journal");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, Event::Dispatch, Phase::Queued, Phase::Running, None)
            .unwrap();
        j.append(1, Event::Finish, Phase::Running, Phase::Done, Some(0xabcd))
            .unwrap();
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].digest, Some(0xabcd));
        assert_eq!(records[1].event, Event::Finish);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_sequence() {
        let dir = tmpdir("seq");
        let path = dir.join("serve.journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(7, Event::Dispatch, Phase::Queued, Phase::Running, None)
                .unwrap();
            assert_eq!(j.next_seq(), 1);
        }
        {
            let mut j = Journal::open(&path).unwrap();
            assert_eq!(j.next_seq(), 1);
            let r = j
                .append(7, Event::Pause, Phase::Running, Phase::Paused, None)
                .unwrap();
            assert_eq!(r.seq, 1);
        }
        let records = read_journal(&path).unwrap();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), [0, 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_salvages_prefix_and_quarantines_tail() {
        let dir = tmpdir("recover");
        let path = dir.join("serve.journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(1, Event::Dispatch, Phase::Queued, Phase::Running, None)
                .unwrap();
            j.append(1, Event::Finish, Phase::Running, Phase::Done, Some(0xfeed))
                .unwrap();
        }
        // Simulate a hard kill mid-append: a torn final line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("txn seq=2 id=2 ev=dispa");
        std::fs::write(&path, &text).unwrap();

        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.quarantined_lines, 1);
        let qpath = rec.quarantine_path.unwrap();
        assert!(std::fs::read_to_string(&qpath)
            .unwrap()
            .contains("ev=dispa"));

        // The rewritten journal is clean and continues the sequence.
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.next_seq(), 2);
        j.append(2, Event::Dispatch, Phase::Queued, Phase::Running, None)
            .unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_cuts_at_sequence_gap() {
        let dir = tmpdir("gap");
        let path = dir.join("serve.journal");
        std::fs::write(
            &path,
            "pdf-serve v1\n\
             txn seq=0 id=1 ev=dispatch from=queued to=running\n\
             txn seq=5 id=1 ev=pause from=running to=paused\n",
        )
        .unwrap();
        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.quarantined_lines, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_of_clean_or_missing_journal_is_a_no_op() {
        let dir = tmpdir("clean");
        let path = dir.join("serve.journal");
        assert_eq!(recover_journal(&path).unwrap().records.len(), 0);
        assert!(!path.exists(), "recovery must not invent a journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(1, Event::Dispatch, Phase::Queued, Phase::Running, None)
                .unwrap();
        }
        let before = std::fs::read_to_string(&path).unwrap();
        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.quarantined_lines, 0);
        assert_eq!(rec.quarantine_path, None);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_quarantines_whole_file_on_bad_header() {
        let dir = tmpdir("hdr");
        let path = dir.join("serve.journal");
        std::fs::write(&path, "not-a-journal\ngarbage\n").unwrap();
        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.records.len(), 0);
        assert_eq!(rec.quarantined_lines, 2);
        assert!(read_journal(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rolls_back_and_journal_stays_clean() {
        let dir = tmpdir("torn-append");
        let path = dir.join("serve.journal");
        let mut j = Journal::open(&path).unwrap();
        j.append(1, Event::Dispatch, Phase::Queued, Phase::Running, None)
            .unwrap();
        // Every storage write tears: the append must fail but leave the
        // journal exactly as it was, with seq unconsumed.
        j.set_faults(Some(std::sync::Arc::new(pdf_chaos::FaultPlan::new(
            3,
            pdf_chaos::FaultSpec {
                torn_write_per_mille: 1000,
                ..pdf_chaos::FaultSpec::QUIET
            },
        ))));
        let err = j
            .append(1, Event::Finish, Phase::Running, Phase::Done, Some(1))
            .unwrap_err();
        assert!(pdf_chaos::is_injected(&err), "unexpected error {err}");
        assert_eq!(j.next_seq(), 1);
        j.set_faults(None);
        let r = j
            .append(1, Event::Finish, Phase::Running, Phase::Done, Some(1))
            .unwrap();
        assert_eq!(r.seq, 1);
        assert_eq!(read_journal(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_rejected() {
        let dir = tmpdir("bad");
        let path = dir.join("serve.journal");
        std::fs::write(
            &path,
            "pdf-serve v1\ntxn seq=0 id=1 ev=warp from=queued to=running\n",
        )
        .unwrap();
        assert!(read_journal(&path).is_err());
        std::fs::write(&path, "not-a-journal\n").unwrap();
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! A complete solver for byte-domain path conditions.
//!
//! At the parser level every KLEE query is a conjunction of per-byte
//! (dis)equalities, range tests and `strcmp` prefixes, plus a length
//! constraint from EOF accesses. Each byte gets a 256-bit domain; the
//! conjunction is solved by intersection. The solver is sound and
//! complete for this constraint language.

use crate::path::Cond;

/// A set of feasible values for one input byte (256-bit mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain([u64; 4]);

impl Default for Domain {
    fn default() -> Self {
        Self::full()
    }
}

impl Domain {
    /// All 256 byte values.
    pub fn full() -> Self {
        Domain([u64::MAX; 4])
    }

    /// The empty domain.
    pub fn empty() -> Self {
        Domain([0; 4])
    }

    /// Whether no value remains.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Whether `b` is in the domain.
    pub fn contains(&self, b: u8) -> bool {
        self.0[usize::from(b) / 64] & (1u64 << (usize::from(b) % 64)) != 0
    }

    /// Restricts to exactly `b` (intersection with the singleton).
    pub fn require(&mut self, b: u8) {
        let mut only = Domain::empty();
        only.0[usize::from(b) / 64] |= 1u64 << (usize::from(b) % 64);
        for i in 0..4 {
            self.0[i] &= only.0[i];
        }
    }

    /// Removes `b`.
    pub fn exclude(&mut self, b: u8) {
        self.0[usize::from(b) / 64] &= !(1u64 << (usize::from(b) % 64));
    }

    /// Intersects with the inclusive range.
    pub fn intersect_range(&mut self, lo: u8, hi: u8) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        for v in 0..=255u8 {
            if v < lo || v > hi {
                self.exclude(v);
            }
        }
    }

    /// Removes the inclusive range.
    pub fn subtract_range(&mut self, lo: u8, hi: u8) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        for v in lo..=hi {
            self.exclude(v);
        }
    }

    /// Picks a deterministic witness: `preferred` when feasible, else
    /// the smallest printable value, else the smallest value.
    pub fn pick(&self, preferred: u8) -> Option<u8> {
        if self.contains(preferred) {
            return Some(preferred);
        }
        (0x20..0x7fu8)
            .find(|&b| self.contains(b))
            .or_else(|| (0..=255u8).find(|&b| self.contains(b)))
    }
}

/// Solves a conjunction of conditions; returns a satisfying input, or
/// `None` when the conjunction is infeasible.
pub fn solve(conds: &[Cond], filler: u8) -> Option<Vec<u8>> {
    let mut domains: Vec<Domain> = Vec::new();
    let mut exact_len: Option<usize> = None;
    let mut min_len: usize = 0;

    let ensure = |domains: &mut Vec<Domain>, index: usize| {
        if domains.len() <= index {
            domains.resize(index + 1, Domain::full());
        }
    };

    for cond in conds {
        match cond {
            Cond::Byte { index, value, eq } => {
                ensure(&mut domains, *index);
                min_len = min_len.max(index + 1);
                if *eq {
                    domains[*index].require(*value);
                } else {
                    domains[*index].exclude(*value);
                }
            }
            Cond::Range {
                index,
                lo,
                hi,
                inside,
            } => {
                ensure(&mut domains, *index);
                min_len = min_len.max(index + 1);
                if *inside {
                    domains[*index].intersect_range(*lo, *hi);
                } else {
                    domains[*index].subtract_range(*lo, *hi);
                }
            }
            Cond::Str {
                start,
                full,
                matched,
                ok,
            } => {
                if *ok {
                    // the whole string is present at `start`
                    for (k, &b) in full.iter().enumerate() {
                        ensure(&mut domains, start + k);
                        domains[start + k].require(b);
                    }
                    min_len = min_len.max(start + full.len());
                } else {
                    // the matched prefix is present; when matching
                    // diverged inside the string, the byte right after
                    // the prefix differs. (When `matched == full.len()`
                    // the failure came from the tainted string being
                    // longer — keep just the prefix facts; the next
                    // concolic run re-collects the rest.)
                    let div = (*matched).min(full.len());
                    for (k, &b) in full[..div].iter().enumerate() {
                        ensure(&mut domains, start + k);
                        domains[start + k].require(b);
                    }
                    min_len = min_len.max(start + div);
                    if div < full.len() {
                        ensure(&mut domains, start + div);
                        domains[start + div].exclude(full[div]);
                        min_len = min_len.max(start + div + 1);
                    }
                }
            }
            Cond::Eof { index, hit } => {
                if *hit {
                    match exact_len {
                        Some(l) if l != *index => return None,
                        _ => exact_len = Some(*index),
                    }
                } else {
                    min_len = min_len.max(index + 1);
                }
            }
        }
    }

    let len = match exact_len {
        Some(l) => {
            if l < min_len {
                return None;
            }
            l
        }
        None => min_len,
    };
    // constraints beyond the final length are contradictory
    if domains.len() > len && domains[len..].iter().any(|d| *d != Domain::full()) {
        return None;
    }

    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let d = domains.get(i).copied().unwrap_or_else(Domain::full);
        if d.is_empty() {
            return None;
        }
        out.push(d.pick(filler)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_full_and_exclude() {
        let mut d = Domain::full();
        assert!(d.contains(0));
        assert!(d.contains(255));
        d.exclude(b'a');
        assert!(!d.contains(b'a'));
        assert!(d.contains(b'b'));
    }

    #[test]
    fn domain_require() {
        let mut d = Domain::full();
        d.require(b'x');
        assert!(d.contains(b'x'));
        assert!(!d.contains(b'y'));
        d.require(b'y');
        assert!(d.is_empty());
    }

    #[test]
    fn domain_ranges() {
        let mut d = Domain::full();
        d.intersect_range(b'0', b'9');
        assert!(d.contains(b'5'));
        assert!(!d.contains(b'a'));
        d.subtract_range(b'0', b'4');
        assert!(!d.contains(b'3'));
        assert!(d.contains(b'7'));
    }

    #[test]
    fn domain_pick_prefers_filler_then_printable() {
        let mut d = Domain::full();
        assert_eq!(d.pick(b' '), Some(b' '));
        d.exclude(b' ');
        assert_eq!(d.pick(b' '), Some(b'!'));
        let mut only_nul = Domain::empty();
        only_nul.0[0] = 1;
        assert_eq!(only_nul.pick(b' '), Some(0));
        assert_eq!(Domain::empty().pick(b' '), None);
    }

    #[test]
    fn solve_simple_equality() {
        let conds = vec![Cond::Byte {
            index: 0,
            value: b'(',
            eq: true,
        }];
        assert_eq!(solve(&conds, b' '), Some(b"(".to_vec()));
    }

    #[test]
    fn solve_fills_gaps_with_filler() {
        let conds = vec![Cond::Byte {
            index: 2,
            value: b'x',
            eq: true,
        }];
        assert_eq!(solve(&conds, b'.'), Some(b"..x".to_vec()));
    }

    #[test]
    fn solve_detects_conflicts() {
        let conds = vec![
            Cond::Byte {
                index: 0,
                value: b'a',
                eq: true,
            },
            Cond::Byte {
                index: 0,
                value: b'a',
                eq: false,
            },
        ];
        assert_eq!(solve(&conds, b' '), None);
    }

    #[test]
    fn solve_range_and_disequality() {
        let conds = vec![
            Cond::Range {
                index: 0,
                lo: b'0',
                hi: b'9',
                inside: true,
            },
            Cond::Byte {
                index: 0,
                value: b'0',
                eq: false,
            },
        ];
        let out = solve(&conds, b' ').unwrap();
        assert!(out[0].is_ascii_digit() && out[0] != b'0');
    }

    #[test]
    fn solve_str_ok_inserts_keyword() {
        let conds = vec![Cond::Str {
            start: 1,
            full: b"while".to_vec(),
            matched: 2,
            ok: true,
        }];
        assert_eq!(solve(&conds, b'.'), Some(b".while".to_vec()));
    }

    #[test]
    fn solve_str_fail_diverges_after_prefix() {
        let conds = vec![Cond::Str {
            start: 0,
            full: b"for".to_vec(),
            matched: 2,
            ok: false,
        }];
        let out = solve(&conds, b' ').unwrap();
        assert_eq!(&out[..2], b"fo");
        assert_ne!(out[2], b'r');
    }

    #[test]
    fn solve_negated_success_diverges_at_start() {
        // negate() encodes a forced divergence as matched = 0
        let conds = vec![Cond::Str {
            start: 0,
            full: b"if".to_vec(),
            matched: 0,
            ok: false,
        }];
        let out = solve(&conds, b' ').unwrap();
        assert_ne!(out[0], b'i');
    }

    #[test]
    fn solve_overlong_match_keeps_prefix_only() {
        // a real failed strcmp where the tainted string was longer than
        // the expected one: the prefix holds, nothing else is asserted
        let conds = vec![Cond::Str {
            start: 0,
            full: b"for".to_vec(),
            matched: 3,
            ok: false,
        }];
        assert_eq!(solve(&conds, b' '), Some(b"for".to_vec()));
    }

    #[test]
    fn eof_exact_length() {
        let conds = vec![
            Cond::Byte {
                index: 0,
                value: b'(',
                eq: true,
            },
            Cond::Eof {
                index: 1,
                hit: true,
            },
        ];
        assert_eq!(solve(&conds, b' '), Some(b"(".to_vec()));
    }

    #[test]
    fn negated_eof_extends_input() {
        let conds = vec![
            Cond::Byte {
                index: 0,
                value: b'(',
                eq: true,
            },
            Cond::Eof {
                index: 1,
                hit: false,
            },
        ];
        assert_eq!(solve(&conds, b' '), Some(b"( ".to_vec()));
    }

    #[test]
    fn conflicting_lengths_are_infeasible() {
        let conds = vec![
            Cond::Eof {
                index: 1,
                hit: true,
            },
            Cond::Byte {
                index: 3,
                value: b'x',
                eq: true,
            },
        ];
        assert_eq!(solve(&conds, b' '), None);
    }
}

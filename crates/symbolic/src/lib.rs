//! A KLEE-style symbolic-execution baseline — the "semantic" competitor
//! of the pFuzzer evaluation (Section 5).
//!
//! KLEE executes the program on symbolic input, collects the branch
//! conditions along each path, and asks a solver for concrete inputs
//! that drive execution down unexplored paths. At the parser level every
//! such condition is a constraint over single input bytes (equalities,
//! range tests, `strcmp` prefixes), so this crate implements the same
//! loop *concolically*:
//!
//! 1. run a concrete input through the instrumented subject and read the
//!    path condition off the comparison log ([`path`]),
//! 2. negate each unexplored condition suffix and solve the resulting
//!    conjunction with a complete byte-domain solver ([`solver`]),
//! 3. explore breadth-first with a bounded state queue — on subjects
//!    like mjs the branching factor (33-keyword `strcmp` tables, the
//!    operator ladder) makes the frontier explode, reproducing the
//!    paper's observation that "KLEE, suffering from the path explosion
//!    problem, finds almost no valid inputs for mjs".
//!
//! As in the paper's setup, only inputs that cover new code are emitted.
//!
//! # Example
//!
//! ```
//! use pdf_symbolic::{KleeConfig, KleeFuzzer};
//!
//! let subject = pdf_subjects::arith::subject();
//! let config = KleeConfig { max_execs: 2_000, ..KleeConfig::default() };
//! let report = KleeFuzzer::new(subject, config).run();
//! assert!(!report.valid_inputs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod path;
pub mod solver;

use std::collections::{HashSet, VecDeque};

use pdf_runtime::{BranchSet, Digest, PhaseClock, Rng, RunStats, Subject};

use path::{negate, path_condition, Cond};
use solver::solve;

/// State-selection strategy (KLEE's `--search`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Breadth-first over paths (the default; matches the evaluation).
    #[default]
    Bfs,
    /// Depth-first: digs deep quickly but starves the siblings.
    Dfs,
    /// Uniform random state selection (KLEE's `random-state`), seeded
    /// for reproducibility.
    RandomState(u64),
}

/// Configuration for the symbolic baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KleeConfig {
    /// Execution budget (subject runs; solver work is not separately
    /// metered — at the byte level it is trivial next to an execution).
    pub max_execs: u64,
    /// State-queue bound: when the breadth-first frontier outgrows this,
    /// new states are dropped — the resource wall real KLEE hits as
    /// memory/solver explosion.
    pub max_states: usize,
    /// Per-path limit on negated conditions (KLEE's per-path fork
    /// bound). Conditions beyond this depth are not negated.
    pub max_depth: usize,
    /// Filler byte for unconstrained input positions.
    pub filler: u8,
    /// State-selection strategy.
    pub search: SearchStrategy,
    /// Bound on solved input length (KLEE fixes the symbolic input
    /// size up front; this is the equivalent cap).
    pub max_input_len: usize,
}

impl Default for KleeConfig {
    fn default() -> Self {
        KleeConfig {
            max_execs: 100_000,
            max_states: 20_000,
            max_depth: 400,
            filler: b' ',
            search: SearchStrategy::Bfs,
            max_input_len: 256,
        }
    }
}

impl KleeConfig {
    /// 64-bit digest of the exploration-shaping fields. The execution
    /// budget is excluded — a record/replay journal cell stores it
    /// separately; the hash identifies the *configuration* a recording
    /// ran under so drift is detected. The `RandomState` seed *is*
    /// included: unlike the other tools it lives inside the strategy,
    /// not in a per-cell seed field.
    pub fn config_hash(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("klee-config-v1");
        d.write_u64(self.max_states as u64);
        d.write_u64(self.max_depth as u64);
        d.write_u8(self.filler);
        match self.search {
            SearchStrategy::Bfs => d.write_u8(0),
            SearchStrategy::Dfs => d.write_u8(1),
            SearchStrategy::RandomState(seed) => {
                d.write_u8(2);
                d.write_u64(seed);
            }
        }
        d.write_u64(self.max_input_len as u64);
        d.finish()
    }
}

/// The outcome of a symbolic-execution campaign.
#[derive(Debug, Clone)]
pub struct KleeReport {
    /// Valid inputs that covered new code, in discovery order.
    pub valid_inputs: Vec<Vec<u8>>,
    /// Execution count at which each valid input was found (parallel to
    /// `valid_inputs`).
    pub valid_found_at: Vec<u64>,
    /// Subject executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs.
    pub valid_branches: BranchSet,
    /// Branches covered by any run.
    pub all_branches: BranchSet,
    /// States (inputs) generated over the campaign.
    pub states_generated: usize,
    /// Whether the frontier hit the state bound (path explosion).
    pub exploded: bool,
    /// Observability counters and timings for the campaign.
    pub stats: RunStats,
}

/// One frontier state: a concrete input awaiting concolic execution.
///
/// No generational bound is kept (SAGE-style "only negate conditions
/// after the parent's fork point"): EOF negations change the *prefix* of
/// the child's path (the EOF conjunct disappears and fresh comparisons
/// appear before the fork point), so the bound would starve the search.
/// Re-derived duplicates are cheap to drop via the global seen-set
/// instead.
#[derive(Debug, Clone)]
struct State {
    input: Vec<u8>,
}

fn pop_state(
    frontier: &mut VecDeque<State>,
    search: SearchStrategy,
    rng: Option<&mut Rng>,
) -> Option<State> {
    match search {
        SearchStrategy::Bfs => frontier.pop_front(),
        SearchStrategy::Dfs => frontier.pop_back(),
        SearchStrategy::RandomState(_) => {
            if frontier.is_empty() {
                return None;
            }
            let rng = rng.expect("random-state search carries an RNG");
            let i = rng.gen_range(0, frontier.len());
            frontier.swap_remove_back(i)
        }
    }
}

/// The KLEE-style fuzzer.
#[derive(Debug)]
pub struct KleeFuzzer {
    subject: Subject,
    cfg: KleeConfig,
}

impl KleeFuzzer {
    /// Creates a symbolic-execution driver for `subject`.
    pub fn new(subject: Subject, cfg: KleeConfig) -> Self {
        KleeFuzzer { subject, cfg }
    }

    /// Runs the campaign to completion.
    pub fn run(self) -> KleeReport {
        let _span = pdf_obs::span("klee.campaign");
        let mut report = KleeReport {
            valid_inputs: Vec::new(),
            valid_found_at: Vec::new(),
            execs: 0,
            valid_branches: BranchSet::new(),
            all_branches: BranchSet::new(),
            states_generated: 0,
            exploded: false,
            stats: RunStats::default(),
        };
        let mut clock = PhaseClock::new();
        let mut frontier: VecDeque<State> = VecDeque::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut rng = match self.cfg.search {
            SearchStrategy::RandomState(seed) => Some(Rng::new(seed)),
            _ => None,
        };
        // symbolic execution starts from the empty input (size 0)
        frontier.push_back(State { input: Vec::new() });
        seen.insert(Vec::new());

        while let Some(state) = pop_state(&mut frontier, self.cfg.search, rng.as_mut()) {
            if report.execs >= self.cfg.max_execs {
                break;
            }
            pdf_obs::record(|m| {
                let depth = frontier.len() as u64;
                m.queue_depth.observe(depth);
                m.queue_depth_now.set(depth);
            });
            report.execs += 1;
            // the concolic loop negates conjuncts of the full path
            // condition, so this tool genuinely needs the FullLog sink
            let subject = &self.subject;
            let exec = clock.time("execute", || subject.run(&state.input));
            report.stats.events += exec.log.events.len() as u64;
            if exec.verdict.is_hang() {
                report.stats.hangs += 1;
            }
            if exec.verdict.is_crash() {
                report.stats.crashes += 1;
            }
            let branches = exec.log.branches();
            report.all_branches.union_with(&branches);
            let new_branches = branches.difference_size(&report.valid_branches);
            if exec.valid && new_branches > 0 {
                pdf_obs::record(|m| {
                    m.valid_inputs.inc();
                    m.new_branches.add(new_branches as u64);
                });
                report.valid_branches.union_with(&branches);
                report.valid_inputs.push(state.input.clone());
                report.valid_found_at.push(report.execs);
            }
            clock.time("solve", || {
                // collect the path condition and fork every suffix
                let conds: Vec<Cond> = path_condition(&exec.log);
                let depth = conds.len().min(self.cfg.max_depth);
                for j in 0..depth {
                    let Some(neg) = negate(&conds[j]) else {
                        continue;
                    };
                    let mut prefix: Vec<Cond> = conds[..j].to_vec();
                    prefix.push(neg);
                    let Some(new_input) = solve(&prefix, self.cfg.filler) else {
                        continue; // infeasible
                    };
                    if new_input.len() > self.cfg.max_input_len {
                        continue; // beyond the symbolic input size
                    }
                    if !seen.insert(new_input.clone()) {
                        continue;
                    }
                    report.states_generated += 1;
                    if frontier.len() >= self.cfg.max_states {
                        report.exploded = true;
                        continue; // dropped: the explosion wall
                    }
                    frontier.push_back(State { input: new_input });
                }
            });
        }
        report.stats.executions = report.execs;
        report.stats.valid_inputs = report.valid_inputs.len() as u64;
        report.stats.queue_depth = frontier.len();
        // BFS/DFS draw nothing (decisions stay 0); random-state search
        // journals its RNG usage as a draw count plus stream digest.
        if let Some(rng) = &rng {
            report.stats.decisions = rng.draw_count();
            report.stats.decision_digest = rng.stream_digest();
        }
        let (wall, phases) = clock.finish();
        report.stats.wall_secs = wall;
        report.stats.phases = phases;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(subject: Subject, execs: u64) -> KleeReport {
        let cfg = KleeConfig {
            max_execs: execs,
            ..KleeConfig::default()
        };
        KleeFuzzer::new(subject, cfg).run()
    }

    #[test]
    fn solves_arith_paths() {
        let report = run(pdf_subjects::arith::subject(), 2_000);
        assert!(!report.valid_inputs.is_empty());
        let subject = pdf_subjects::arith::subject();
        for input in &report.valid_inputs {
            assert!(
                subject.run(input).valid,
                "{:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn finds_json_keywords_symbolically() {
        // the paper: "As KLEE works symbolically, it only needs to find a
        // valid path with a keyword on it; solving the path constraints
        // on that path is then easy."
        let report = run(pdf_subjects::json::subject(), 8_000);
        let joined: Vec<String> = report
            .valid_inputs
            .iter()
            .map(|i| String::from_utf8_lossy(i).into_owned())
            .collect();
        let text = joined.join("\n");
        assert!(
            text.contains("true") || text.contains("false") || text.contains("null"),
            "no keyword found in {joined:?}"
        );
    }

    #[test]
    fn is_deterministic() {
        let a = run(pdf_subjects::csv::subject(), 1_000);
        let b = run(pdf_subjects::csv::subject(), 1_000);
        assert_eq!(a.valid_inputs, b.valid_inputs);
        assert_eq!(a.states_generated, b.states_generated);
    }

    #[test]
    fn respects_exec_budget() {
        let report = run(pdf_subjects::json::subject(), 300);
        assert!(report.execs <= 300);
    }

    #[test]
    fn chaos_hangs_and_crashes_are_counted() {
        // KLEE's concolic frontier dries up after a handful of broken
        // executions, so use pure-rate configs to pin each counter.
        use pdf_subjects::chaos::{self, ChaosConfig};
        let all_panic = ChaosConfig {
            panic_per_mille: 1000,
            ..ChaosConfig::silent(13)
        };
        let r = run(chaos::wrap(pdf_subjects::csv::subject(), all_panic), 100);
        assert!(r.execs > 0);
        assert_eq!(r.stats.crashes, r.execs, "every execution crashes");
        let all_hang = ChaosConfig {
            hang_per_mille: 1000,
            ..ChaosConfig::silent(13)
        };
        let r = run(chaos::wrap(pdf_subjects::csv::subject(), all_hang), 100);
        assert!(r.execs > 0);
        assert_eq!(r.stats.hangs, r.execs, "every execution hangs");
    }

    #[test]
    fn bfs_draws_no_decisions_random_state_does() {
        let bfs = run(pdf_subjects::csv::subject(), 500);
        assert_eq!(bfs.stats.decisions, 0);
        assert_eq!(bfs.stats.decision_digest, 0);
        let cfg = KleeConfig {
            max_execs: 500,
            search: SearchStrategy::RandomState(3),
            ..KleeConfig::default()
        };
        let rand = KleeFuzzer::new(pdf_subjects::csv::subject(), cfg.clone()).run();
        assert!(rand.stats.decisions > 0);
        let again = KleeFuzzer::new(pdf_subjects::csv::subject(), cfg).run();
        assert_eq!(rand.stats.decisions, again.stats.decisions);
        assert_eq!(rand.stats.decision_digest, again.stats.decision_digest);
    }

    #[test]
    fn config_hash_ignores_budget_but_sees_strategy() {
        let base = KleeConfig::default();
        let rebudgeted = KleeConfig {
            max_execs: 1,
            ..base.clone()
        };
        assert_eq!(base.config_hash(), rebudgeted.config_hash());
        let dfs = KleeConfig {
            search: SearchStrategy::Dfs,
            ..base.clone()
        };
        assert_ne!(base.config_hash(), dfs.config_hash());
        let r1 = KleeConfig {
            search: SearchStrategy::RandomState(1),
            ..base.clone()
        };
        let r2 = KleeConfig {
            search: SearchStrategy::RandomState(2),
            ..base.clone()
        };
        assert_ne!(r1.config_hash(), r2.config_hash());
    }

    #[test]
    fn small_state_bound_explodes_on_mjs() {
        let cfg = KleeConfig {
            max_execs: 3_000,
            max_states: 200,
            ..KleeConfig::default()
        };
        let report = KleeFuzzer::new(pdf_subjects::mjs::subject(), cfg).run();
        assert!(report.exploded, "mjs should overflow a 200-state frontier");
    }

    #[test]
    fn dfs_digs_deeper_than_bfs() {
        // DFS extends one path aggressively: its longest emitted input
        // should be at least as long as BFS's under the same budget
        let bfs = KleeFuzzer::new(
            pdf_subjects::dyck::subject(),
            KleeConfig {
                max_execs: 1_500,
                ..KleeConfig::default()
            },
        )
        .run();
        let dfs = KleeFuzzer::new(
            pdf_subjects::dyck::subject(),
            KleeConfig {
                max_execs: 1_500,
                search: SearchStrategy::Dfs,
                max_input_len: 64,
                ..KleeConfig::default()
            },
        )
        .run();
        let max_len = |r: &KleeReport| r.valid_inputs.iter().map(Vec::len).max().unwrap_or(0);
        assert!(
            max_len(&dfs) >= max_len(&bfs),
            "dfs {} < bfs {}",
            max_len(&dfs),
            max_len(&bfs)
        );
    }

    #[test]
    fn random_state_search_is_seeded_deterministic() {
        let cfg = KleeConfig {
            max_execs: 800,
            search: SearchStrategy::RandomState(9),
            ..KleeConfig::default()
        };
        let a = KleeFuzzer::new(pdf_subjects::json::subject(), cfg.clone()).run();
        let b = KleeFuzzer::new(pdf_subjects::json::subject(), cfg).run();
        assert_eq!(a.valid_inputs, b.valid_inputs);
    }

    #[test]
    fn emits_only_new_coverage_inputs() {
        let report = run(pdf_subjects::ini::subject(), 2_000);
        // re-running the emitted corpus must grow coverage monotonically:
        // every input added something when it was recorded
        let subject = pdf_subjects::ini::subject();
        let mut seen = BranchSet::new();
        for input in &report.valid_inputs {
            let exec = subject.run(input);
            assert!(exec.log.branches().difference_size(&seen) > 0);
            seen.union_with(&exec.log.branches());
        }
    }
}

//! Path conditions: the symbolic reading of an execution's comparison
//! log.

use pdf_runtime::{CmpValue, Event, ExecLog};

/// One conjunct of a path condition, as a constraint over input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// The byte at `index` equals (`eq = true`) or differs from `value`.
    Byte {
        /// Input index.
        index: usize,
        /// Compared value.
        value: u8,
        /// Polarity.
        eq: bool,
    },
    /// The byte at `index` lies inside (`inside = true`) or outside the
    /// inclusive range.
    Range {
        /// Input index.
        index: usize,
        /// Range start.
        lo: u8,
        /// Range end.
        hi: u8,
        /// Polarity.
        inside: bool,
    },
    /// The bytes starting at `start` match (`ok = true`) or fail to
    /// match the string `full` (a `strcmp`).
    Str {
        /// Index of the first compared byte.
        start: usize,
        /// The expected string.
        full: Vec<u8>,
        /// Bytes that agreed before divergence.
        matched: usize,
        /// Polarity.
        ok: bool,
    },
    /// The input ended at `index` (`hit = true`: the parser read past
    /// the end there) or extends beyond it.
    Eof {
        /// The index of the past-the-end read.
        index: usize,
        /// Polarity.
        hit: bool,
    },
}

/// Extracts the path condition from an execution log, in program order.
pub fn path_condition(log: &ExecLog) -> Vec<Cond> {
    let mut conds = Vec::new();
    // A run logs one EOF access per past-the-end read, all at the same
    // index (the input length); a single conjunct carries all the
    // information, and keeping duplicates would make extending the input
    // (negating a later copy under an earlier one) spuriously infeasible.
    let mut eof_seen = false;
    for event in &log.events {
        match event {
            Event::Cmp(c) => match &c.expected {
                CmpValue::Byte(b) => {
                    if c.observed.is_some() {
                        conds.push(Cond::Byte {
                            index: c.index,
                            value: *b,
                            eq: c.outcome,
                        });
                    }
                }
                CmpValue::Range(lo, hi) => {
                    if c.observed.is_some() {
                        conds.push(Cond::Range {
                            index: c.index,
                            lo: *lo,
                            hi: *hi,
                            inside: c.outcome,
                        });
                    }
                }
                CmpValue::Str { full, matched } => {
                    let start = c.index.saturating_sub(*matched);
                    conds.push(Cond::Str {
                        start,
                        full: full.clone(),
                        matched: *matched,
                        ok: c.outcome,
                    });
                }
            },
            Event::EofAccess(i) => {
                if !eof_seen {
                    eof_seen = true;
                    conds.push(Cond::Eof {
                        index: *i,
                        hit: true,
                    });
                }
            }
            Event::Branch(..) => {}
        }
    }
    conds
}

/// Negates one conjunct, if a useful negation exists.
pub fn negate(cond: &Cond) -> Option<Cond> {
    match cond {
        Cond::Byte { index, value, eq } => Some(Cond::Byte {
            index: *index,
            value: *value,
            eq: !eq,
        }),
        Cond::Range {
            index,
            lo,
            hi,
            inside,
        } => Some(Cond::Range {
            index: *index,
            lo: *lo,
            hi: *hi,
            inside: !inside,
        }),
        Cond::Str {
            start,
            full,
            matched,
            ok,
        } => Some(Cond::Str {
            start: *start,
            full: full.clone(),
            // Negating a *successful* strcmp means forcing a divergence;
            // resetting `matched` to 0 encodes "diverge at the first
            // byte" for the solver. Negating a failure keeps `matched`
            // so the solver asserts the full string.
            matched: if *ok { 0 } else { *matched },
            ok: !ok,
        }),
        Cond::Eof { index, hit } => Some(Cond::Eof {
            index: *index,
            hit: !hit,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_runtime::{Cmp, SiteId};

    fn cmp_event(index: usize, observed: Option<u8>, expected: CmpValue, outcome: bool) -> Event {
        Event::Cmp(Cmp {
            index,
            observed,
            expected,
            outcome,
            depth: 0,
            site: SiteId::from_raw(1),
        })
    }

    #[test]
    fn byte_comparisons_become_conditions() {
        let log = ExecLog {
            events: vec![
                cmp_event(0, Some(b'a'), CmpValue::Byte(b'a'), true),
                cmp_event(1, Some(b'x'), CmpValue::Byte(b'b'), false),
            ],
            input_len: 2,
        };
        let conds = path_condition(&log);
        assert_eq!(
            conds,
            vec![
                Cond::Byte {
                    index: 0,
                    value: b'a',
                    eq: true
                },
                Cond::Byte {
                    index: 1,
                    value: b'b',
                    eq: false
                },
            ]
        );
    }

    #[test]
    fn eof_comparisons_are_skipped_but_eof_access_kept() {
        let log = ExecLog {
            events: vec![
                Event::EofAccess(0),
                cmp_event(0, None, CmpValue::Byte(b'a'), false),
            ],
            input_len: 0,
        };
        let conds = path_condition(&log);
        assert_eq!(
            conds,
            vec![Cond::Eof {
                index: 0,
                hit: true
            }]
        );
    }

    #[test]
    fn strcmp_keeps_start_offset() {
        // "wh" matched 2 bytes of "while", failing at index 5 (start 3)
        let log = ExecLog {
            events: vec![cmp_event(
                5,
                Some(b'x'),
                CmpValue::Str {
                    full: b"while".to_vec(),
                    matched: 2,
                },
                false,
            )],
            input_len: 6,
        };
        let conds = path_condition(&log);
        assert_eq!(
            conds,
            vec![Cond::Str {
                start: 3,
                full: b"while".to_vec(),
                matched: 2,
                ok: false
            }]
        );
    }

    #[test]
    fn negation_flips_polarity() {
        let c = Cond::Byte {
            index: 0,
            value: b'a',
            eq: true,
        };
        assert_eq!(
            negate(&c),
            Some(Cond::Byte {
                index: 0,
                value: b'a',
                eq: false
            })
        );
        let e = Cond::Eof {
            index: 3,
            hit: true,
        };
        assert_eq!(
            negate(&e),
            Some(Cond::Eof {
                index: 3,
                hit: false
            })
        );
    }
}

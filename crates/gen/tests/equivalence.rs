//! The compiled generator's derivation contract. The compiled
//! [`CompiledGrammar`](pdf_gen::CompiledGrammar) is **not** draw-for-draw
//! identical to the recursive [`Generator`]: it expands one accounted
//! [`Rng`] draw into a [`DerivedRng`](pdf_runtime::DerivedRng) bulk
//! stream and samples alternatives from that. What it guarantees
//! instead — and what these tests pin down — is:
//!
//! 1. **Seeded determinism**: same `(grammar, seed, depth)` → identical
//!    bytes and choice traces, run after run; different seeds diverge.
//! 2. **Chokepoint accounting**: at most one accounted draw per
//!    generator lifetime, no matter how many inputs are generated; zero
//!    on fully forced paths (single-alternative grammars, depth 0) —
//!    so replay journals still witness every bit of entropy consumed.
//! 3. **Forced-path identity**: wherever no random choice exists, the
//!    compiled generator emits byte-for-byte what the recursive one
//!    does (depth 0 cheapest expansions, single-alternative grammars).
//! 4. **Distributional agreement**: under uniform weights both sample
//!    uniformly over the same alternatives, so aggregate behaviour
//!    (validity rate, which alternatives get exercised) matches within
//!    statistical tolerance even though individual streams differ.

use pdf_gen::{compile_uniform, GenBatch};
use pdf_grammar::{mine_corpus, Generator};
use pdf_runtime::Rng;
use proptest::prelude::*;

fn arith_grammar() -> pdf_grammar::Grammar {
    let corpus: Vec<Vec<u8>> = [&b"1"[..], b"(1)", b"((2))", b"1+2", b"(1+2)-3"]
        .iter()
        .map(|c| c.to_vec())
        .collect();
    mine_corpus(pdf_subjects::arith::subject(), &corpus)
}

#[test]
fn compiled_generation_is_seed_deterministic_across_runs() {
    let grammar = arith_grammar();
    for seed in [1u64, 42, 0xdead_beef] {
        let mut a = compile_uniform(&grammar, 10).unwrap();
        let mut b = compile_uniform(&grammar, 10).unwrap();
        let mut ra = Rng::new(seed);
        let mut rb = Rng::new(seed);
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        for i in 0..200 {
            a.generate_traced(&mut ra, &mut oa, &mut ta);
            b.generate_traced(&mut rb, &mut ob, &mut tb);
            assert_eq!(oa, ob, "seed {seed}: bytes diverged at input {i}");
            assert_eq!(ta, tb, "seed {seed}: traces diverged at input {i}");
        }
        assert_eq!(ra.draw_count(), rb.draw_count());
        assert_eq!(ra.stream_digest(), rb.stream_digest());
    }
}

#[test]
fn different_seeds_produce_different_streams() {
    let grammar = arith_grammar();
    let collect = |seed: u64| -> Vec<Vec<u8>> {
        let mut c = compile_uniform(&grammar, 10).unwrap();
        let mut rng = Rng::new(seed);
        let mut out = Vec::new();
        (0..50)
            .map(|_| {
                c.generate_into(&mut rng, &mut out);
                out.clone()
            })
            .collect()
    };
    assert_ne!(collect(17), collect(18));
}

#[test]
fn whole_lifetime_costs_at_most_one_accounted_draw() {
    let grammar = arith_grammar();
    let mut compiled = compile_uniform(&grammar, 12).unwrap();
    let mut rng = Rng::new(9);
    let mut batch = GenBatch::new();
    let mut out = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..5 {
        compiled.generate_batch(&mut rng, &mut batch, 200);
        compiled.generate_traced(&mut rng, &mut out, &mut trace);
    }
    assert_eq!(
        rng.draw_count(),
        1,
        "1005 inputs must cost exactly one accounted draw"
    );
}

#[test]
fn forced_paths_match_recursive_byte_for_byte() {
    // depth 0: every expansion is the precomputed cheapest alternative
    // in both generators — no entropy, identical bytes.
    let grammar = arith_grammar();
    let mut recursive = Generator::new(&grammar, 0);
    let mut compiled = compile_uniform(&grammar, 0).unwrap();
    let mut rr = Rng::new(5);
    let mut rc = Rng::new(5);
    let mut buf = Vec::new();
    for _ in 0..20 {
        let want = recursive.generate(&mut rr);
        compiled.generate_into(&mut rc, &mut buf);
        assert_eq!(buf, want);
    }
    assert_eq!(rc.draw_count(), 0, "forced paths must consume no entropy");
}

#[test]
fn distributions_agree_under_uniform_weights() {
    // Both generators choose uniformly over the same alternatives, so
    // their validity rates on the mined arith grammar must agree within
    // a loose statistical tolerance even though the streams differ.
    let subject = pdf_subjects::arith::subject();
    let grammar = arith_grammar();
    const N: usize = 2000;
    let mut recursive = Generator::new(&grammar, 8);
    let mut rr = Rng::new(77);
    let rec_valid = (0..N)
        .filter(|_| subject.run(&recursive.generate(&mut rr)).valid)
        .count();
    let mut compiled = compile_uniform(&grammar, 8).unwrap();
    let mut rc = Rng::new(78);
    let mut buf = Vec::new();
    let comp_valid = (0..N)
        .filter(|_| {
            compiled.generate_into(&mut rc, &mut buf);
            subject.run(&buf).valid
        })
        .count();
    let (a, b) = (rec_valid as f64 / N as f64, comp_valid as f64 / N as f64);
    assert!(
        (a - b).abs() < 0.1,
        "validity rates diverged: recursive {a:.3} vs compiled {b:.3}"
    );
    assert!(b > 0.3, "compiled validity rate collapsed: {b:.3}");
}

#[test]
fn compiled_exercises_every_start_alternative() {
    let grammar = arith_grammar();
    let start_alts = grammar.alts(pdf_grammar::START).len();
    let mut compiled = compile_uniform(&grammar, 8).unwrap();
    let mut rng = Rng::new(13);
    let mut out = Vec::new();
    let mut trace = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..500 {
        compiled.generate_traced(&mut rng, &mut out, &mut trace);
        if let Some(&first) = trace.first() {
            seen.insert(first);
        }
    }
    assert_eq!(
        seen.len(),
        start_alts,
        "uniform sampling must reach all {start_alts} start alternatives"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The contract holds for arbitrary mined corpora and seeds, not
    /// just the hand-picked ones: seeded determinism, batch/per-call
    /// agreement, and the one-draw entropy bound.
    #[test]
    fn contract_on_arbitrary_corpora(
        corpus in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..6),
        seed in any::<u64>(),
        depth in 0usize..12,
    ) {
        let grammar = mine_corpus(pdf_subjects::arith::subject(), &corpus);

        // determinism
        let mut a = compile_uniform(&grammar, depth).unwrap();
        let mut b = compile_uniform(&grammar, depth).unwrap();
        let mut ra = Rng::new(seed);
        let mut rb = Rng::new(seed);
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        for _ in 0..20 {
            a.generate_traced(&mut ra, &mut oa, &mut ta);
            b.generate_traced(&mut rb, &mut ob, &mut tb);
            prop_assert_eq!(&oa, &ob);
            prop_assert_eq!(&ta, &tb);
        }
        prop_assert!(ra.draw_count() <= 1, "lifetime entropy bound violated");

        // batch generation agrees with per-call generation
        let mut c = compile_uniform(&grammar, depth).unwrap();
        let mut rc = Rng::new(seed);
        let mut batch = GenBatch::new();
        c.generate_batch(&mut rc, &mut batch, 20);
        let mut d = compile_uniform(&grammar, depth).unwrap();
        let mut rd = Rng::new(seed);
        for i in 0..20 {
            d.generate_traced(&mut rd, &mut oa, &mut ta);
            prop_assert_eq!(batch.input(i), &oa[..]);
            prop_assert_eq!(batch.trace(i), &ta[..]);
        }
        prop_assert_eq!(rc.draw_count(), rd.draw_count());
    }
}

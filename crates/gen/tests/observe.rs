//! The observe-only contract for the `grammar.*` metrics: installing a
//! metrics registry must not change a single campaign digest (the
//! counters read relaxed atomics and never touch the RNG chokepoint),
//! and the new counters must actually register — both in the live
//! registry and in the `pdf-metrics v1` snapshot encoding.

use std::sync::Arc;

use pdf_core::ExecMode;
use pdf_gen::{run_combined, CombinedConfig};
use pdf_obs::MetricsRegistry;

fn cfg(seed: u64) -> CombinedConfig {
    CombinedConfig {
        seed,
        explore_execs: 2_000,
        shards: 2,
        fleet_execs_per_shard: 1_000,
        sync_every: 200,
        gen_epochs: 3,
        gen_batch: 48,
        max_depth: 8,
        exec_mode: ExecMode::Full,
    }
}

#[test]
fn metrics_never_change_digests_and_grammar_counters_register() {
    let subject = pdf_subjects::arith::subject();
    let bare = run_combined(subject, &cfg(5)).unwrap();

    let registry = Arc::new(MetricsRegistry::new());
    let observed = {
        let _scope = pdf_obs::install(Arc::clone(&registry));
        run_combined(subject, &cfg(5)).unwrap()
    };

    // observe-only: identical campaign with or without metrics
    assert_eq!(bare.digest(), observed.digest());
    assert_eq!(bare.promoted, observed.promoted);

    // the counters tally exactly what the report says happened
    let flood = observed.flood.as_ref().expect("arith grammar floods");
    assert_eq!(registry.grammar_generated.get(), flood.generated);
    assert_eq!(
        registry.grammar_generated_valid.get(),
        flood.generated_valid
    );
    assert_eq!(
        registry.grammar_weight_epochs.get(),
        flood.epochs_run as u64
    );
    assert_eq!(registry.grammar_promotions.get(), observed.promoted);

    // and they appear in the snapshot schema
    let encoded = registry.snapshot().encode();
    for name in [
        "grammar.generated",
        "grammar.generated_valid",
        "grammar.weight_epochs",
        "grammar.promotions",
    ] {
        assert!(encoded.contains(name), "snapshot is missing {name}");
    }
}

//! High-rate generation backend over mined grammars — the throughput
//! half of the ROADMAP's "close the loop" item.
//!
//! `pdf-grammar` mines a recursive [`Grammar`](pdf_grammar::Grammar)
//! from pFuzzer's valid inputs; its recursive `Generator` walks that
//! grammar through a `BTreeMap` with a fresh allocation per node. This
//! crate makes the mined structure *fast* and *adaptive*:
//!
//! 1. [`compile`] — flatten the grammar into dense rule tables: `u32`
//!    rule ids, one shared terminal byte pool with adjacent literals
//!    fused (single-alternative literal rules are spliced into their
//!    callers entirely), per-rule precomputed cheapest expansions (the
//!    entire depth-bound subtree becomes one copy), an explicit
//!    reusable work stack, and batch generation into a flat
//!    [`GenBatch`] arena. All entropy still flows through the seeded
//!    [`Rng`](pdf_runtime::Rng) chokepoint, but the compiled generator
//!    expands *one* accounted draw per lifetime into a
//!    [`DerivedRng`](pdf_runtime::DerivedRng) bulk stream, so accounted
//!    draws per input drop by orders of magnitude while seeded replay
//!    stays byte-identical. The `grammar_gen` bench gates the measured
//!    speedup over the recursive generator and the ≥10× accounted-draw
//!    reduction; EXPERIMENTS.md reports why end-to-end throughput gains
//!    over an already-compiled recursive baseline are ~2×, not the
//!    order of magnitude the *Building Fast Fuzzers* paper reports over
//!    interpreted generators.
//! 2. [`mod@evolve`] — EvoGFuzz-style evolutionary weighting: flood
//!    generated batches through `exec_batch_fast`, escalate fresh valid
//!    inputs to coverage runs, credit each alternative's choice trace
//!    with its branch yield, re-weight at deterministic epochs.
//! 3. [`combined`] — the three-stage campaign: pFuzzer explores, the
//!    miner generalizes, the generator floods while a `pdf-fleet` fleet
//!    keeps fuzzing, with generator-found valid inputs promoted into
//!    every shard's queue between epochs.
//!
//! All randomness flows through the seeded [`Rng`](pdf_runtime::Rng)
//! chokepoint, so every layer is replay-deterministic: same
//! configuration, same digests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod compile;
pub mod evolve;

pub use combined::{run_combined, CombinedConfig, CombinedReport};
pub use compile::{compile_uniform, CompileError, CompiledGrammar, GenBatch};
pub use evolve::{evolve, EvolveConfig, EvolveReport, Evolver};

//! The combined three-stage campaign: pFuzzer discovers syntax,
//! `pdf-grammar` mines and generalizes it, `pdf-gen` floods coverage
//! through the batch hot path while a `pdf-fleet` fleet keeps fuzzing —
//! with generator-found valid inputs promoted into every shard's
//! candidate queue between epochs, and generator coverage folded into
//! the shards' scoring baselines.
//!
//! Degenerate grammars are handled honestly: when exploration finds
//! nothing to mine, or the mined grammar's cheapest alternatives cycle,
//! the flood stage is *skipped* (recorded in
//! [`CombinedReport::flood_skipped`]) and the campaign degrades to a
//! plain fleet — it never fabricates generator results.
//!
//! # Determinism contract
//!
//! Every stage draws only from seeded [`Rng`](pdf_runtime::Rng) streams
//! and the interleaving of generator and fleet epochs is fixed, so two
//! runs with the same configuration produce identical
//! [`CombinedReport::digest`]s — the property the `grammar-gen` CI job
//! gates on.

use pdf_core::{DriverConfig, ExecMode, Fuzzer};
use pdf_fleet::{Fleet, FleetConfig, FleetReport};
use pdf_grammar::{mine_corpus, GrammarFile};
use pdf_runtime::{Digest, Subject};

use crate::compile::CompiledGrammar;
use crate::evolve::{EvolveConfig, EvolveReport, Evolver};

/// Configuration of the combined campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedConfig {
    /// Base seed; every stage derives its stream from it.
    pub seed: u64,
    /// Execution budget of the pFuzzer exploration stage.
    pub explore_execs: u64,
    /// Fleet shards for the third stage.
    pub shards: usize,
    /// Per-shard execution budget of the fleet stage.
    pub fleet_execs_per_shard: u64,
    /// Per-shard executions between fleet sync epochs.
    pub sync_every: u64,
    /// Generator re-weighting epochs interleaved with fleet epochs.
    pub gen_epochs: usize,
    /// Inputs generated per generator epoch.
    pub gen_batch: usize,
    /// Depth bound for grammar expansion.
    pub max_depth: usize,
    /// Execution mode of the fleet shards (the exploration stage always
    /// runs fully instrumented: mining needs its comparison log).
    pub exec_mode: ExecMode,
}

impl Default for CombinedConfig {
    fn default() -> Self {
        CombinedConfig {
            seed: 0,
            explore_execs: 8_000,
            shards: 2,
            fleet_execs_per_shard: 4_000,
            sync_every: 500,
            gen_epochs: 8,
            gen_batch: 256,
            max_depth: 10,
            exec_mode: ExecMode::Full,
        }
    }
}

/// The outcome of a combined campaign.
#[derive(Debug, Clone)]
pub struct CombinedReport {
    /// Valid inputs the exploration stage discovered.
    pub explore_valid: usize,
    /// Executions the exploration stage spent.
    pub explore_execs: u64,
    /// Digest of the exploration stage's full report.
    pub explore_digest: u64,
    /// Nonterminals in the mined grammar.
    pub grammar_rules: usize,
    /// Digest of the mined grammar + final learned weights (the
    /// `pdf-grammar v1` file digest), zero when the flood was skipped.
    pub grammar_digest: u64,
    /// Why the generator flood did not run, when it did not — an empty
    /// or degenerate grammar is reported, never papered over.
    pub flood_skipped: Option<String>,
    /// The generator flood's report, when it ran.
    pub flood: Option<EvolveReport>,
    /// The fleet stage's merged report.
    pub fleet: FleetReport,
    /// Distinct generator-found valid inputs promoted into fleet
    /// queues.
    pub promoted: u64,
    /// The mined grammar plus final learned weights, when the flood
    /// ran — what `evalrunner --grammar-out` persists.
    pub grammar: Option<GrammarFile>,
}

impl CombinedReport {
    /// The grammar + learned weights as a persistable codec file, when
    /// the flood ran.
    pub fn grammar_file(&self) -> Option<&GrammarFile> {
        self.grammar.as_ref()
    }

    /// FNV-1a digest folding every stage's digest — the combined
    /// campaign's determinism witness.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.explore_valid as u64);
        d.write_u64(self.explore_execs);
        d.write_u64(self.explore_digest);
        d.write_u64(self.grammar_rules as u64);
        d.write_u64(self.grammar_digest);
        d.write_u8(u8::from(self.flood_skipped.is_some()));
        if let Some(flood) = &self.flood {
            d.write_u64(flood.digest());
        }
        d.write_u64(self.fleet.digest());
        d.write_u64(self.promoted);
        d.finish()
    }
}

/// Runs the combined campaign. Infallible configuration errors aside,
/// the only failure mode is an invalid fleet configuration.
///
/// # Errors
///
/// [`pdf_fleet::FleetError`] when the fleet configuration is invalid
/// (zero shards or sync interval).
pub fn run_combined(
    subject: Subject,
    cfg: &CombinedConfig,
) -> Result<CombinedReport, pdf_fleet::FleetError> {
    // Stage 1 — explore. Full instrumentation regardless of the fleet's
    // exec mode: the miner profiles comparison events.
    let explore = Fuzzer::new(
        subject,
        DriverConfig {
            seed: cfg.seed,
            max_execs: cfg.explore_execs,
            ..DriverConfig::default()
        },
    )
    .run();
    let explore_digest = explore.digest();
    let explore_execs = explore.execs;

    // Stage 2 — mine and compile.
    let grammar = mine_corpus(subject, &explore.valid_inputs);
    let grammar_rules = grammar.len();
    let mut evolver: Option<Evolver> = None;
    let mut flood_skipped: Option<String> = None;
    if grammar.alts(pdf_grammar::START).is_empty() {
        flood_skipped = Some(format!(
            "mined grammar has no start alternatives ({} valid inputs explored)",
            explore.valid_inputs.len()
        ));
    } else {
        match CompiledGrammar::compile(&GrammarFile::uniform(grammar.clone()), cfg.max_depth) {
            Ok(compiled) => {
                evolver = Some(Evolver::new(
                    subject,
                    compiled,
                    EvolveConfig {
                        seed: cfg.seed,
                        epochs: cfg.gen_epochs,
                        batch: cfg.gen_batch,
                        ..EvolveConfig::default()
                    },
                ));
            }
            Err(e) => flood_skipped = Some(e.to_string()),
        }
    }

    // Stage 3 — fleet, with generator epochs interleaved. The fleet's
    // seed stream is offset from the explore stage's so the stages stay
    // independent.
    let base = DriverConfig {
        seed: cfg.seed.wrapping_add(0x0101),
        max_execs: cfg.fleet_execs_per_shard,
        exec_mode: cfg.exec_mode,
        ..DriverConfig::default()
    };
    let mut fleet = Fleet::new(
        subject,
        FleetConfig {
            shards: cfg.shards,
            sync_every: cfg.sync_every,
            base,
            parallel: false,
        },
    )?;
    let mut promoted: u64 = 0;
    let mut gen_epochs_left = if evolver.is_some() { cfg.gen_epochs } else { 0 };
    let mut fleet_done = false;
    while gen_epochs_left > 0 || !fleet_done {
        if let (Some(ev), true) = (evolver.as_mut(), gen_epochs_left > 0) {
            let epoch_yield = ev.epoch();
            gen_epochs_left -= 1;
            if !epoch_yield.fresh_valid.is_empty() {
                let fresh = fleet.inject_external(&epoch_yield.fresh_valid);
                promoted += fresh;
                pdf_obs::record(|m| m.grammar_promotions.add(fresh));
            }
            if epoch_yield.fresh_branches > 0 {
                fleet.adopt_external_coverage(ev.branches());
            }
        }
        if !fleet_done {
            fleet_done = fleet.run_epoch();
        }
    }

    let flood = evolver.map(Evolver::into_report);
    let grammar_file = flood.as_ref().map(|f| {
        GrammarFile::with_weights(grammar.clone(), f.weights.clone())
            .expect("evolver weights match the grammar shape")
    });
    Ok(CombinedReport {
        explore_valid: explore.valid_inputs.len(),
        explore_execs,
        explore_digest,
        grammar_rules,
        grammar_digest: grammar_file.as_ref().map_or(0, GrammarFile::digest),
        flood_skipped,
        flood,
        fleet: fleet.into_report(),
        promoted,
        grammar: grammar_file,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> CombinedConfig {
        CombinedConfig {
            seed,
            explore_execs: 3_000,
            shards: 2,
            fleet_execs_per_shard: 1_500,
            sync_every: 300,
            gen_epochs: 4,
            gen_batch: 64,
            max_depth: 8,
            exec_mode: ExecMode::Full,
        }
    }

    #[test]
    fn combined_campaign_is_seed_deterministic() {
        let a = run_combined(pdf_subjects::arith::subject(), &quick_cfg(7)).unwrap();
        let b = run_combined(pdf_subjects::arith::subject(), &quick_cfg(7)).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.fleet.digest(), b.fleet.digest());
        assert_eq!(a.promoted, b.promoted);
    }

    #[test]
    fn combined_campaign_floods_and_promotes() {
        let report = run_combined(pdf_subjects::arith::subject(), &quick_cfg(1)).unwrap();
        assert!(report.explore_valid > 0);
        assert!(report.grammar_rules > 0);
        assert!(report.flood_skipped.is_none(), "{:?}", report.flood_skipped);
        let flood = report.flood.as_ref().unwrap();
        assert!(flood.generated > 0);
        assert!(!flood.distinct_valid.is_empty());
        assert!(report.promoted > 0, "no generator input was promoted");
        assert!(report.grammar_digest != 0);
        assert!(report.grammar_file().is_some());
    }

    #[test]
    fn degenerate_grammar_degrades_to_plain_fleet() {
        // the chaos subject accepts nothing quickly enough for a tiny
        // exploration budget to mine from
        let cfg = CombinedConfig {
            explore_execs: 50,
            gen_epochs: 2,
            gen_batch: 16,
            fleet_execs_per_shard: 300,
            sync_every: 100,
            ..quick_cfg(3)
        };
        let report = run_combined(pdf_subjects::tinyc::subject(), &cfg).unwrap();
        if report.flood_skipped.is_some() {
            assert!(report.flood.is_none());
            assert_eq!(report.promoted, 0);
            assert_eq!(report.grammar_digest, 0);
        }
        // either way the fleet ran its budget
        assert!(report.fleet.total_execs > 0);
    }
}

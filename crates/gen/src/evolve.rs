//! Evolutionary weighting: tally each alternative's branch-coverage
//! yield and re-weight the compiled choice tables at deterministic
//! epochs — the EvoGFuzz idea (PAPERS.md) under this repo's replay
//! contract.
//!
//! Each epoch floods a batch of generated inputs through the
//! [`exec_batch_fast`](pdf_runtime::Subject::exec_batch_fast) hot path
//! (fast-failure tier: a validity verdict, no branch data), then
//! escalates only the *distinct, newly seen valid* inputs to full
//! coverage runs. Every alternative in a fresh valid input's choice
//! trace is credited with the input's newly covered branches plus a
//! validity bonus; at the epoch boundary the weight table is rebuilt as
//!
//! ```text
//! w' = 1 + w/2 + yield        (clamped to [1, weight_cap])
//! ```
//!
//! — old signal decays geometrically, productive alternatives compound,
//! and nothing ever reaches zero (every alternative stays sampleable,
//! so the distribution cannot collapse). All arithmetic is integer and
//! the only randomness is the generator's own [`Rng`] stream, so two
//! runs with the same `(grammar, seed, epochs, batch)` produce
//! identical weights, inputs and digests.

use std::collections::BTreeSet;

use pdf_runtime::{digest_bytes, BranchSet, Digest, ExecArena, Rng, Subject};

use crate::compile::{CompiledGrammar, GenBatch};

/// Configuration of an evolutionary generation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolveConfig {
    /// Seed for the generation stream.
    pub seed: u64,
    /// Re-weighting epochs to run.
    pub epochs: usize,
    /// Inputs generated per epoch.
    pub batch: usize,
    /// Upper clamp for any single weight, bounding how hard one
    /// alternative can dominate the sample distribution.
    pub weight_cap: u32,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        EvolveConfig {
            seed: 0,
            epochs: 8,
            batch: 256,
            weight_cap: 1 << 12,
        }
    }
}

/// The outcome of an evolutionary generation campaign.
#[derive(Debug, Clone)]
pub struct EvolveReport {
    /// Epochs completed.
    pub epochs_run: usize,
    /// Inputs generated (epochs × batch).
    pub generated: u64,
    /// Generated inputs the subject accepted, duplicates included.
    pub generated_valid: u64,
    /// Distinct valid inputs, in discovery order.
    pub distinct_valid: Vec<Vec<u8>>,
    /// Branches covered by the distinct valid inputs (from the
    /// escalated coverage runs).
    pub branches: BranchSet,
    /// Learned weights in [`GrammarFile`](pdf_grammar::GrammarFile)
    /// shape, ready to persist through the `pdf-grammar v1` codec.
    pub weights: Vec<Vec<u32>>,
}

impl EvolveReport {
    /// FNV-1a digest over every deterministic field — equal across two
    /// runs with the same grammar and configuration.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.epochs_run as u64);
        d.write_u64(self.generated);
        d.write_u64(self.generated_valid);
        d.write_u64(self.distinct_valid.len() as u64);
        for input in &self.distinct_valid {
            d.write_bytes(input);
        }
        d.write_u64(self.branches.len() as u64);
        for b in self.branches.iter() {
            d.write_u64(b.site.0);
            d.write_u8(b.outcome as u8);
        }
        for row in &self.weights {
            d.write_u64(row.len() as u64);
            for &w in row {
                d.write_u64(u64::from(w));
            }
        }
        d.finish()
    }
}

/// What one epoch discovered — the unit the combined campaign promotes
/// into fleet queues between fleet epochs.
#[derive(Debug, Clone, Default)]
pub struct EpochYield {
    /// Valid inputs first seen this epoch, in discovery order.
    pub fresh_valid: Vec<Vec<u8>>,
    /// Branches first covered this epoch.
    pub fresh_branches: usize,
}

/// The stepwise evolutionary loop: owns the generator, the coverage
/// frontier and the reusable batch buffers; [`epoch`](Evolver::epoch)
/// advances one re-weighting epoch at a time so a caller (the combined
/// campaign) can interleave generation with fleet epochs.
#[derive(Debug)]
pub struct Evolver {
    subject: Subject,
    compiled: CompiledGrammar,
    cfg: EvolveConfig,
    rng: Rng,
    arena: ExecArena,
    /// Reused flat arena of generated inputs and choice traces
    /// (cleared each epoch, never shrunk — allocation-free at steady
    /// state).
    batch: GenBatch,
    /// Per-alternative yield accumulator, cleared each epoch.
    alt_yield: Vec<u64>,
    seen: BTreeSet<u64>,
    branches: BranchSet,
    distinct_valid: Vec<Vec<u8>>,
    epochs_run: usize,
    generated: u64,
    generated_valid: u64,
}

impl Evolver {
    /// Creates an evolver over an already compiled grammar.
    pub fn new(subject: Subject, compiled: CompiledGrammar, cfg: EvolveConfig) -> Self {
        let alt_count = compiled.alt_count();
        Evolver {
            subject,
            compiled,
            rng: Rng::new(cfg.seed ^ 0x4556_4f47), // "EVOG"
            arena: ExecArena::new(),
            batch: GenBatch::new(),
            alt_yield: vec![0; alt_count],
            cfg,
            seen: BTreeSet::new(),
            branches: BranchSet::new(),
            distinct_valid: Vec::new(),
            epochs_run: 0,
            generated: 0,
            generated_valid: 0,
        }
    }

    /// The current weight table, in `GrammarFile` shape.
    pub fn weight_rows(&self) -> Vec<Vec<u32>> {
        self.compiled.weight_rows()
    }

    /// Branches covered by distinct valid generated inputs so far.
    pub fn branches(&self) -> &BranchSet {
        &self.branches
    }

    /// Runs one epoch: generate a batch, flood it through the fast
    /// batch tier, escalate fresh valid inputs to coverage runs, credit
    /// their choice traces, re-weight.
    pub fn epoch(&mut self) -> EpochYield {
        let mut result = EpochYield::default();
        self.compiled
            .generate_batch(&mut self.rng, &mut self.batch, self.cfg.batch);
        let views: Vec<&[u8]> = self.batch.inputs().collect();
        let verdicts: Vec<bool> = self
            .subject
            .exec_batch_fast(&mut self.arena, &views)
            .iter()
            .map(|e| e.valid)
            .collect();
        self.generated += self.batch.len() as u64;
        self.alt_yield.iter_mut().for_each(|y| *y = 0);
        let mut epoch_valid: u64 = 0;
        for (i, &valid) in verdicts.iter().enumerate() {
            if !valid {
                continue;
            }
            epoch_valid += 1;
            let input = self.batch.input(i);
            if !self.seen.insert(digest_bytes(input)) {
                continue;
            }
            // fresh valid input: the fast tier proved validity but
            // carries no branch data — escalate this one input to a
            // full coverage run and credit its trace
            let cov = self.subject.run_coverage(input);
            let mut fresh_branches: u64 = 0;
            for b in cov.cov.branches.iter() {
                if self.branches.insert(*b) {
                    fresh_branches += 1;
                }
            }
            result.fresh_branches += fresh_branches as usize;
            for &alt in self.batch.trace(i) {
                self.alt_yield[alt as usize] += fresh_branches + 1;
            }
            self.distinct_valid.push(input.to_vec());
            result.fresh_valid.push(input.to_vec());
        }
        self.generated_valid += epoch_valid;
        let cap = self.cfg.weight_cap.max(1);
        let new_weights: Vec<u32> = self
            .compiled
            .weights()
            .iter()
            .zip(&self.alt_yield)
            .map(|(&w, &y)| {
                let grown = u64::from(1 + w / 2) + y;
                u32::try_from(grown).unwrap_or(u32::MAX).clamp(1, cap)
            })
            .collect();
        self.compiled
            .set_weights(&new_weights)
            .expect("weight shape is stable across epochs");
        self.epochs_run += 1;
        pdf_obs::record(|m| {
            m.grammar_generated.add(self.cfg.batch as u64);
            m.grammar_generated_valid.add(epoch_valid);
            m.grammar_weight_epochs.inc();
        });
        result
    }

    /// Finalizes into the campaign report.
    pub fn into_report(self) -> EvolveReport {
        EvolveReport {
            epochs_run: self.epochs_run,
            generated: self.generated,
            generated_valid: self.generated_valid,
            distinct_valid: self.distinct_valid,
            branches: self.branches,
            weights: self.compiled.weight_rows(),
        }
    }
}

/// Runs all configured epochs in one call — the standalone (non-fleet)
/// entry point.
pub fn evolve(subject: Subject, compiled: CompiledGrammar, cfg: EvolveConfig) -> EvolveReport {
    let mut evolver = Evolver::new(subject, compiled, cfg.clone());
    for _ in 0..cfg.epochs {
        evolver.epoch();
    }
    evolver.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_uniform;
    use pdf_grammar::mine_corpus;

    fn arith_compiled() -> CompiledGrammar {
        let corpus: Vec<Vec<u8>> = [&b"1"[..], b"(1)", b"((2))", b"1+2", b"(1+2)-3"]
            .iter()
            .map(|c| c.to_vec())
            .collect();
        let grammar = mine_corpus(pdf_subjects::arith::subject(), &corpus);
        compile_uniform(&grammar, 8).unwrap()
    }

    #[test]
    fn evolve_is_deterministic() {
        let cfg = EvolveConfig {
            seed: 3,
            epochs: 4,
            batch: 64,
            ..EvolveConfig::default()
        };
        let a = evolve(
            pdf_subjects::arith::subject(),
            arith_compiled(),
            cfg.clone(),
        );
        let b = evolve(pdf_subjects::arith::subject(), arith_compiled(), cfg);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.distinct_valid, b.distinct_valid);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn evolve_finds_valid_inputs_and_learns() {
        let report = evolve(
            pdf_subjects::arith::subject(),
            arith_compiled(),
            EvolveConfig {
                seed: 1,
                epochs: 4,
                batch: 128,
                ..EvolveConfig::default()
            },
        );
        assert_eq!(report.epochs_run, 4);
        assert_eq!(report.generated, 4 * 128);
        assert!(report.generated_valid > 0);
        assert!(!report.distinct_valid.is_empty());
        assert!(!report.branches.is_empty());
        // at least one weight moved off the uniform baseline
        assert!(report.weights.iter().flatten().any(|&w| w != 1));
    }

    #[test]
    fn weights_stay_positive_and_capped() {
        let cap = 16;
        let report = evolve(
            pdf_subjects::arith::subject(),
            arith_compiled(),
            EvolveConfig {
                seed: 2,
                epochs: 6,
                batch: 64,
                weight_cap: cap,
            },
        );
        for &w in report.weights.iter().flatten() {
            assert!(w >= 1 && w <= cap, "weight {w} outside [1, {cap}]");
        }
    }

    #[test]
    fn stepwise_epochs_match_one_shot() {
        let cfg = EvolveConfig {
            seed: 5,
            epochs: 3,
            batch: 48,
            ..EvolveConfig::default()
        };
        let one_shot = evolve(
            pdf_subjects::arith::subject(),
            arith_compiled(),
            cfg.clone(),
        );
        let mut stepper = Evolver::new(pdf_subjects::arith::subject(), arith_compiled(), cfg);
        let mut fresh_total = 0;
        for _ in 0..3 {
            fresh_total += stepper.epoch().fresh_valid.len();
        }
        let stepped = stepper.into_report();
        assert_eq!(one_shot.digest(), stepped.digest());
        assert_eq!(fresh_total, stepped.distinct_valid.len());
    }
}

//! Grammar compilation: a mined [`Grammar`] flattened into dense rule
//! tables the generator walks without allocation or recursion.
//!
//! *Building Fast Fuzzers* (PAPERS.md) observes that the gap between
//! tree-walking grammar generators and compiled ones is one to two
//! orders of magnitude; this module reproduces the compiled half under
//! this repo's determinism contract. The transformation:
//!
//! - **Dense rule ids.** Every nonterminal (defined or merely
//!   referenced) gets a `u32` id; id `0` is always the start symbol.
//!   All per-rule state lives in flat `Vec`s indexed by id — no
//!   `BTreeMap` walk per expansion.
//! - **Pre-concatenated terminals.** All literal bytes live in one
//!   shared pool; adjacent literals inside an alternative are fused at
//!   compile time, so emitting a terminal run is a single
//!   `extend_from_slice`.
//! - **Forced chains inlined.** A rule with a single, literal-only
//!   alternative emits the same fixed bytes at every depth, draws
//!   nothing and carries no choice worth tracing — so references to it
//!   are spliced into the caller (transitively) and re-fused with the
//!   neighbouring literals. What the recursive generator resolves with
//!   a map walk per level, the compiled one resolves at compile time.
//! - **Precomputed cheapest expansions.** Once the depth bound is
//!   reached, the recursive [`Generator`](pdf_grammar::Generator)
//!   deterministically expands each rule's cheapest alternative all the
//!   way down without drawing any randomness — so the entire subtree is
//!   a *fixed byte string* per rule, precomputed here and emitted as one
//!   copy.
//! - **Explicit work stack.** Expansion keeps the current alternative's
//!   op cursor in locals and suspends parents on a reusable frame
//!   stack; a rule whose reference is the last op of its parent resumes
//!   nothing and pushes no frame. With
//!   [`CompiledGrammar::generate_into`] reusing the caller's buffer,
//!   the steady state allocates nothing.
//!
//! # Determinism and derivation contract
//!
//! All randomness is rooted in the caller's [`Rng`] chokepoint, but not
//! drawn per choice: the first real choice derives a [`DerivedRng`]
//! bulk stream via [`Rng::derive_stream`] — **one accounted draw for
//! the generator's lifetime** — and every alternative is then sampled
//! from that stream (one SplitMix64 step and a multiply-shift per
//! choice, no per-draw accounting). The derived stream is a pure
//! function of the accounted draw, so seeded campaigns replay
//! byte-identically and the chokepoint's draw count and rolling digest
//! still witness the entire generated corpus. Forced paths — single
//! alternatives, depth-bound expansions — consume no entropy at all,
//! mirroring the recursive generator.
//!
//! Under uniform weights each choice is uniform over the same
//! alternatives the recursive [`Generator`](pdf_grammar::Generator)
//! chooses from, so the two sample the *same distribution* over the
//! grammar's language; the concrete byte streams differ because the
//! compiled generator does not pay one accounted draw per choice —
//! that difference is precisely what the `grammar_gen` bench measures.
//! On fully forced grammars (or a zero depth bound) no entropy is
//! consumed and the two are byte-for-byte identical; `tests/
//! equivalence.rs` certifies both halves of this contract.

use std::collections::BTreeSet;
use std::fmt;

use pdf_grammar::{Grammar, GrammarFile, Label, Sym, START};
use pdf_runtime::{DerivedRng, Rng};

/// One flattened operation of an alternative's body.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Emit `pool[off..off + len]`.
    Lit { off: u32, len: u32 },
    /// Expand the rule with this dense id, one level deeper.
    Rule(u32),
}

/// A suspended parent: the op range still to process for one expanded
/// alternative, at the depth its rule was expanded at.
#[derive(Debug, Clone, Copy)]
struct Frame {
    cursor: u32,
    end: u32,
    depth: u32,
}

/// Errors compiling a grammar or updating its weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The cheapest alternatives of these rules form a reference cycle,
    /// so depth-bounded expansion would never terminate (the recursive
    /// `Generator` would overflow the stack on such a grammar; the
    /// compiler refuses it instead). Carries the first offending label.
    CheapCycle(Label),
    /// A weight update did not match the compiled shape.
    Weights(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CheapCycle(l) => write!(
                f,
                "cheapest alternatives cycle through rule {:016x}: depth-bounded \
                 expansion cannot terminate",
                l.0
            ),
            CompileError::Weights(m) => write!(f, "bad weight update: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A grammar compiled into flat tables, plus the per-alternative weight
/// vector the evolutionary layer tunes. See the module docs for the
/// layout and the derivation contract.
///
/// # Example
///
/// ```
/// use pdf_gen::CompiledGrammar;
/// use pdf_grammar::{mine_corpus, GrammarFile};
/// use pdf_runtime::Rng;
///
/// let subject = pdf_subjects::arith::subject();
/// let corpus = vec![b"1".to_vec(), b"(1)".to_vec(), b"1+2".to_vec()];
/// let file = GrammarFile::uniform(mine_corpus(subject, &corpus));
/// let mut compiled = CompiledGrammar::compile(&file, 8).unwrap();
/// let mut rng = Rng::new(7);
/// let mut buf = Vec::new();
/// compiled.generate_into(&mut rng, &mut buf);
/// assert!(!buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledGrammar {
    /// Dense id → label; index 0 is always [`START`].
    labels: Vec<Label>,
    /// Per rule: global alternative index range; length `rules + 1`.
    rule_alt_start: Vec<u32>,
    /// Per rule: index of its weight row in [`Grammar::labels`] order,
    /// when the rule is defined (referenced-but-undefined rules have no
    /// alternatives and no weights).
    defined_row: Vec<Option<u32>>,
    /// Per global alternative: op range in `ops`.
    alt_ops: Vec<(u32, u32)>,
    /// Per global alternative: sampling weight (always ≥ 1).
    weights: Vec<u32>,
    /// Per rule: sum of its alternatives' weights.
    rule_total: Vec<u64>,
    /// Per rule: whether every weight is exactly 1 (the uniform fast
    /// path skips the prefix scan).
    rule_uniform: Vec<bool>,
    ops: Vec<Op>,
    /// Shared terminal byte pool.
    pool: Vec<u8>,
    /// Per rule: byte range in `cheap_pool` holding its full
    /// cheapest-alternative expansion.
    cheap: Vec<(u32, u32)>,
    cheap_pool: Vec<u8>,
    max_depth: usize,
    /// The derived choice stream; seeded lazily from the chokepoint on
    /// the first real choice (forced-only generation never draws).
    stream: Option<DerivedRng>,
    /// Reusable walk stack (cleared per generation, never shrunk).
    stack: Vec<Frame>,
    /// Reusable trace buffer backing [`Self::generate_into`].
    scratch_trace: Vec<u32>,
}

impl CompiledGrammar {
    /// Compiles `file`'s grammar and weights under the given depth
    /// bound.
    ///
    /// # Errors
    ///
    /// [`CompileError::CheapCycle`] when the cheapest alternatives form
    /// a reference cycle (see the variant docs).
    pub fn compile(file: &GrammarFile, max_depth: usize) -> Result<Self, CompileError> {
        let grammar = file.grammar();
        // dense ids: START first, then every other defined label in
        // sorted order, then referenced-but-undefined labels (they
        // expand to nothing, exactly like `Grammar::alts` returning
        // empty)
        let defined: Vec<Label> = grammar.labels().collect();
        let mut referenced: BTreeSet<Label> = BTreeSet::new();
        for &l in &defined {
            for alt in grammar.alts(l) {
                for sym in alt {
                    if let Sym::Ref(r) = sym {
                        referenced.insert(*r);
                    }
                }
            }
        }
        let mut labels = vec![START];
        labels.extend(defined.iter().copied().filter(|&l| l != START));
        labels.extend(
            referenced
                .iter()
                .copied()
                .filter(|l| !defined.contains(l) && *l != START),
        );
        let id_of = |l: Label| labels.iter().position(|&x| x == l).unwrap() as u32;

        let mut rule_alt_start = Vec::with_capacity(labels.len() + 1);
        let mut defined_row = Vec::with_capacity(labels.len());
        let mut alt_ops = Vec::new();
        let mut weights = Vec::new();
        let mut rule_total = Vec::with_capacity(labels.len());
        let mut ops = Vec::new();
        let mut pool = Vec::new();
        for &label in &labels {
            rule_alt_start.push(alt_ops.len() as u32);
            let row = defined.iter().position(|&l| l == label);
            defined_row.push(row.map(|r| r as u32));
            let alt_weights = row.map(|r| &file.weights()[r]);
            let mut total = 0u64;
            for (a, alt) in grammar.alts(label).iter().enumerate() {
                let op_start = ops.len() as u32;
                // fuse adjacent literals into single pool runs
                let mut run: Option<(u32, u32)> = None;
                for sym in alt {
                    match sym {
                        Sym::Lit(bytes) => {
                            let off = pool.len() as u32;
                            pool.extend_from_slice(bytes);
                            run = Some(match run {
                                Some((o, l)) => (o, l + bytes.len() as u32),
                                None => (off, bytes.len() as u32),
                            });
                        }
                        Sym::Ref(r) => {
                            if let Some((off, len)) = run.take() {
                                ops.push(Op::Lit { off, len });
                            }
                            ops.push(Op::Rule(id_of(*r)));
                        }
                    }
                }
                if let Some((off, len)) = run {
                    ops.push(Op::Lit { off, len });
                }
                alt_ops.push((op_start, ops.len() as u32));
                let w = alt_weights.map_or(1, |row| row[a]).max(1);
                weights.push(w);
                total += u64::from(w);
            }
            rule_total.push(total);
        }
        rule_alt_start.push(alt_ops.len() as u32);

        Self::inline_literal_rules(&rule_alt_start, &mut alt_ops, &mut ops, &mut pool);

        let (cheap, cheap_pool) =
            Self::compute_cheap(&labels, &rule_alt_start, &alt_ops, &ops, &pool)?;

        let rule_uniform = (0..labels.len())
            .map(|r| {
                let (lo, hi) = (rule_alt_start[r], rule_alt_start[r + 1]);
                rule_total[r] == u64::from(hi - lo)
            })
            .collect();

        Ok(CompiledGrammar {
            labels,
            rule_alt_start,
            defined_row,
            alt_ops,
            weights,
            rule_total,
            rule_uniform,
            ops,
            pool,
            cheap,
            cheap_pool,
            max_depth,
            stream: None,
            stack: Vec::new(),
            scratch_trace: Vec::new(),
        })
    }

    /// Splices references to forced, literal-only rules into their
    /// callers. A rule qualifies when it has exactly one alternative
    /// whose body is (after earlier passes) a single literal run or
    /// empty, or no alternatives at all (a referenced-but-undefined
    /// rule, which expands to nothing). Such a rule produces the same
    /// fixed bytes at every depth — its only alternative is also its
    /// cheapest — draws nothing, and its forced trace entry carries no
    /// signal the evolutionary layer could use, so splicing is
    /// behaviour-preserving. Runs to a fixpoint: a rule that becomes
    /// literal-only once its own references are spliced is picked up by
    /// the next pass.
    fn inline_literal_rules(
        rule_alt_start: &[u32],
        alt_ops: &mut Vec<(u32, u32)>,
        ops: &mut Vec<Op>,
        pool: &mut Vec<u8>,
    ) {
        let rules = rule_alt_start.len() - 1;
        // every substitution removes at least one `Op::Rule`, so the
        // fixpoint needs at most one pass per chain link
        for _ in 0..=rules {
            let subst: Vec<Option<(u32, u32)>> = (0..rules)
                .map(|r| {
                    let (lo, hi) = (rule_alt_start[r], rule_alt_start[r + 1]);
                    if lo == hi {
                        return Some((0, 0));
                    }
                    if hi - lo != 1 {
                        return None;
                    }
                    let (olo, ohi) = alt_ops[lo as usize];
                    match &ops[olo as usize..ohi as usize] {
                        [] => Some((0, 0)),
                        [Op::Lit { off, len }] => Some((*off, *len)),
                        _ => None,
                    }
                })
                .collect();

            let mut changed = false;
            let mut new_ops = Vec::with_capacity(ops.len());
            let mut new_alt_ops = Vec::with_capacity(alt_ops.len());
            for &(olo, ohi) in alt_ops.iter() {
                let start = new_ops.len() as u32;
                let mut run: Option<(u32, u32)> = None;
                for op in &ops[olo as usize..ohi as usize] {
                    let lit = match op {
                        Op::Lit { off, len } => Some((*off, *len)),
                        Op::Rule(r) => {
                            let s = subst[*r as usize];
                            changed |= s.is_some();
                            s
                        }
                    };
                    match lit {
                        Some((_, 0)) => {}
                        Some((off, len)) => {
                            run = Some(match run {
                                None => (off, len),
                                // adjacent in the pool: extend the run;
                                // otherwise concatenate into a fresh run
                                Some((o, l)) if o + l == off => (o, l + len),
                                Some((o, l)) => {
                                    let fused = pool.len() as u32;
                                    let head = o as usize..(o + l) as usize;
                                    let tail = off as usize..(off + len) as usize;
                                    pool.extend_from_within(head);
                                    pool.extend_from_within(tail);
                                    (fused, l + len)
                                }
                            });
                        }
                        None => {
                            if let Some((o, l)) = run.take() {
                                new_ops.push(Op::Lit { off: o, len: l });
                            }
                            new_ops.push(*op);
                        }
                    }
                }
                if let Some((o, l)) = run {
                    new_ops.push(Op::Lit { off: o, len: l });
                }
                new_alt_ops.push((start, new_ops.len() as u32));
            }
            *ops = new_ops;
            *alt_ops = new_alt_ops;
            if !changed {
                break;
            }
        }
    }

    /// Per-rule full cheapest expansions, by fixpoint: a rule resolves
    /// once every rule its cheapest alternative references has resolved.
    /// Rules left unresolved when the fixpoint stalls are exactly the
    /// cheap cycles.
    #[allow(clippy::type_complexity)]
    fn compute_cheap(
        labels: &[Label],
        rule_alt_start: &[u32],
        alt_ops: &[(u32, u32)],
        ops: &[Op],
        pool: &[u8],
    ) -> Result<(Vec<(u32, u32)>, Vec<u8>), CompileError> {
        let rules = labels.len();
        // cheapest alternative per rule: fewest rule references, first
        // on ties — the same choice `Generator::index_cheapest` makes
        let cheapest: Vec<Option<u32>> = (0..rules)
            .map(|r| {
                let (lo, hi) = (rule_alt_start[r], rule_alt_start[r + 1]);
                (lo..hi).min_by_key(|&a| {
                    let (olo, ohi) = alt_ops[a as usize];
                    ops[olo as usize..ohi as usize]
                        .iter()
                        .filter(|op| matches!(op, Op::Rule(_)))
                        .count()
                })
            })
            .collect();
        let mut resolved: Vec<Option<Vec<u8>>> = (0..rules)
            .map(|r| cheapest[r].is_none().then(Vec::new))
            .collect();
        loop {
            let mut progress = false;
            for r in 0..rules {
                if resolved[r].is_some() {
                    continue;
                }
                let (olo, ohi) = alt_ops[cheapest[r].expect("unresolved rule has alts") as usize];
                let deps_ready = ops[olo as usize..ohi as usize].iter().all(|op| match op {
                    Op::Rule(c) => resolved[*c as usize].is_some(),
                    Op::Lit { .. } => true,
                });
                if !deps_ready {
                    continue;
                }
                let mut bytes = Vec::new();
                for op in &ops[olo as usize..ohi as usize] {
                    match op {
                        Op::Lit { off, len } => {
                            bytes.extend_from_slice(&pool[*off as usize..(*off + *len) as usize])
                        }
                        Op::Rule(c) => {
                            bytes.extend_from_slice(resolved[*c as usize].as_ref().expect("ready"))
                        }
                    }
                }
                resolved[r] = Some(bytes);
                progress = true;
            }
            if !progress {
                break;
            }
        }
        if let Some(r) = resolved.iter().position(Option::is_none) {
            return Err(CompileError::CheapCycle(labels[r]));
        }
        let mut cheap = Vec::with_capacity(rules);
        let mut cheap_pool = Vec::new();
        for bytes in resolved {
            let bytes = bytes.expect("all resolved");
            let lo = cheap_pool.len() as u32;
            cheap_pool.extend_from_slice(&bytes);
            cheap.push((lo, cheap_pool.len() as u32));
        }
        Ok((cheap, cheap_pool))
    }

    /// Number of rules (dense ids).
    pub fn rules(&self) -> usize {
        self.labels.len()
    }

    /// Total number of alternatives across all rules.
    pub fn alt_count(&self) -> usize {
        self.alt_ops.len()
    }

    /// The depth bound generation runs under.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The flat per-alternative weights, in global alternative order
    /// (rule 0's alternatives first, then rule 1's, ...).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Replaces the flat weight vector and recomputes per-rule totals.
    /// Zero weights are rejected rather than clamped: a zero would
    /// silently remove an alternative from the sample space.
    ///
    /// # Errors
    ///
    /// [`CompileError::Weights`] on a length mismatch or zero weight.
    pub fn set_weights(&mut self, weights: &[u32]) -> Result<(), CompileError> {
        if weights.len() != self.weights.len() {
            return Err(CompileError::Weights(format!(
                "{} weights for {} alternatives",
                weights.len(),
                self.weights.len()
            )));
        }
        if let Some(i) = weights.iter().position(|&w| w == 0) {
            return Err(CompileError::Weights(format!(
                "zero weight at alternative {i}"
            )));
        }
        self.weights.copy_from_slice(weights);
        for r in 0..self.rules() {
            let (lo, hi) = (self.rule_alt_start[r], self.rule_alt_start[r + 1]);
            self.rule_total[r] = self.weights[lo as usize..hi as usize]
                .iter()
                .map(|&w| u64::from(w))
                .sum();
            self.rule_uniform[r] = self.rule_total[r] == u64::from(hi - lo);
        }
        Ok(())
    }

    /// Exports the weights in [`GrammarFile`] shape (one row per
    /// defined rule, in [`Grammar::labels`] order) — the persistence
    /// path back into the `pdf-grammar v1` codec.
    pub fn weight_rows(&self) -> Vec<Vec<u32>> {
        let defined = self.defined_row.iter().flatten().count();
        let mut rows = vec![Vec::new(); defined];
        for r in 0..self.rules() {
            if let Some(row) = self.defined_row[r] {
                let (lo, hi) = (self.rule_alt_start[r], self.rule_alt_start[r + 1]);
                rows[row as usize] = self.weights[lo as usize..hi as usize].to_vec();
            }
        }
        rows
    }

    /// Generates one input into `out`, clearing it first. Entropy
    /// consumption follows the module-level derivation contract: at
    /// most one accounted chokepoint draw over the generator's whole
    /// lifetime, none on forced paths. Steady-state allocation-free
    /// (buffer, stack and trace scratch all keep their capacity).
    pub fn generate_into(&mut self, rng: &mut Rng, out: &mut Vec<u8>) {
        let mut trace = std::mem::take(&mut self.scratch_trace);
        self.generate_traced(rng, out, &mut trace);
        self.scratch_trace = trace;
    }

    /// [`generate_into`](Self::generate_into), also recording the
    /// global index of every alternative chosen, in expansion
    /// (pre-order) order — the attribution stream the evolutionary
    /// weighting layer consumes. Forced expansions (depth-bound
    /// cheapest paths, inlined literal chains) draw nothing and are not
    /// traced.
    pub fn generate_traced(&mut self, rng: &mut Rng, out: &mut Vec<u8>, trace: &mut Vec<u32>) {
        out.clear();
        trace.clear();
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        let mut stream = self.stream.take();
        self.walk(rng, &mut stream, &mut stack, out, trace);
        self.stream = stream;
        self.stack = stack;
    }

    /// Generates `n` inputs into `batch`'s flat arena, clearing it
    /// first — the flood hot path. Amortises everything per-input
    /// generation pays per call (scratch swaps, buffer clears, stack
    /// setup) across the whole batch; inputs and traces land
    /// back-to-back in two byte/index pools, ready to feed
    /// [`exec_batch_fast`](pdf_runtime::Subject::exec_batch_fast)
    /// without materialising per-input `Vec`s.
    pub fn generate_batch(&mut self, rng: &mut Rng, batch: &mut GenBatch, n: usize) {
        batch.clear();
        batch.bounds.reserve(n);
        batch.trace_bounds.reserve(n);
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        let mut stream = self.stream.take();
        for _ in 0..n {
            self.walk(
                rng,
                &mut stream,
                &mut stack,
                &mut batch.bytes,
                &mut batch.traces,
            );
            batch.bounds.push(batch.bytes.len() as u32);
            batch.trace_bounds.push(batch.traces.len() as u32);
        }
        self.stream = stream;
        self.stack = stack;
    }

    /// Expands one derivation from the start symbol, appending bytes to
    /// `out` and chosen alternatives to `trace`. The current
    /// alternative's op cursor lives in locals; parents are suspended
    /// on the frame stack only when they still have ops left (a tail
    /// reference resumes nothing).
    #[inline]
    fn walk(
        &self,
        rng: &mut Rng,
        stream: &mut Option<DerivedRng>,
        stack: &mut Vec<Frame>,
        out: &mut Vec<u8>,
        trace: &mut Vec<u32>,
    ) {
        if let Some((mut cursor, mut end)) = self.select(0, 0, rng, stream, out, trace) {
            let mut depth: u32 = 0;
            loop {
                if cursor == end {
                    match stack.pop() {
                        Some(f) => {
                            cursor = f.cursor;
                            end = f.end;
                            depth = f.depth;
                            continue;
                        }
                        None => break,
                    }
                }
                let op = self.ops[cursor as usize];
                cursor += 1;
                match op {
                    Op::Lit { off, len } => {
                        out.extend_from_slice(&self.pool[off as usize..(off + len) as usize]);
                    }
                    Op::Rule(r) => {
                        if let Some((olo, ohi)) = self.select(r, depth + 1, rng, stream, out, trace)
                        {
                            if cursor != end {
                                stack.push(Frame { cursor, end, depth });
                            }
                            cursor = olo;
                            end = ohi;
                            depth += 1;
                        }
                    }
                }
            }
        }
    }

    /// Expands one rule at `depth`: emits its precomputed cheapest
    /// bytes at the depth bound (returning `None`: there is no body to
    /// walk), otherwise samples an alternative — from the derived
    /// stream only when there is a real choice — and returns its op
    /// range.
    #[inline]
    fn select(
        &self,
        rule: u32,
        depth: u32,
        rng: &mut Rng,
        stream: &mut Option<DerivedRng>,
        out: &mut Vec<u8>,
        trace: &mut Vec<u32>,
    ) -> Option<(u32, u32)> {
        let r = rule as usize;
        let (lo, hi) = (self.rule_alt_start[r], self.rule_alt_start[r + 1]);
        if lo == hi {
            return None;
        }
        if depth as usize >= self.max_depth {
            let (clo, chi) = self.cheap[r];
            out.extend_from_slice(&self.cheap_pool[clo as usize..chi as usize]);
            return None;
        }
        let alt = if hi - lo == 1 {
            lo
        } else {
            let s = match stream {
                Some(s) => s,
                None => stream.insert(rng.derive_stream()),
            };
            if self.rule_uniform[r] {
                lo + s.index(u64::from(hi - lo)) as u32
            } else {
                let mut draw = s.index(self.rule_total[r]);
                let mut a = lo;
                while a + 1 < hi {
                    let w = u64::from(self.weights[a as usize]);
                    if draw < w {
                        break;
                    }
                    draw -= w;
                    a += 1;
                }
                a
            }
        };
        trace.push(alt);
        Some(self.alt_ops[alt as usize])
    }
}

/// A flat batch of generated inputs: all input bytes back-to-back in
/// one arena with boundary offsets, and all choice traces likewise —
/// the output shape of [`CompiledGrammar::generate_batch`]. Reusing one
/// batch across flood epochs is allocation-free at steady state, and
/// [`inputs`](Self::inputs) yields `&[u8]` views that
/// [`exec_batch_fast`](pdf_runtime::Subject::exec_batch_fast) accepts
/// directly.
#[derive(Debug, Clone, Default)]
pub struct GenBatch {
    bytes: Vec<u8>,
    /// Input `i` is `bytes[bounds[i] as usize..bounds[i + 1] as usize]`.
    bounds: Vec<u32>,
    traces: Vec<u32>,
    /// Trace `i` bounded the same way in `traces`.
    trace_bounds: Vec<u32>,
}

impl GenBatch {
    /// An empty batch.
    pub fn new() -> Self {
        GenBatch::default()
    }

    /// Removes all inputs, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bounds.clear();
        self.traces.clear();
        self.trace_bounds.clear();
    }

    /// Number of inputs in the batch.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the batch holds no inputs.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The bytes of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn input(&self, i: usize) -> &[u8] {
        let lo = if i == 0 {
            0
        } else {
            self.bounds[i - 1] as usize
        };
        &self.bytes[lo..self.bounds[i] as usize]
    }

    /// The choice trace of input `i` (global alternative indices, in
    /// expansion order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn trace(&self, i: usize) -> &[u32] {
        let lo = if i == 0 {
            0
        } else {
            self.trace_bounds[i - 1] as usize
        };
        &self.traces[lo..self.trace_bounds[i] as usize]
    }

    /// All inputs, in generation order.
    pub fn inputs(&self) -> impl ExactSizeIterator<Item = &[u8]> {
        (0..self.len()).map(|i| self.input(i))
    }
}

/// Compiles a bare grammar under uniform weights — the common
/// entry point when no learned weights exist yet.
///
/// # Errors
///
/// As [`CompiledGrammar::compile`].
pub fn compile_uniform(
    grammar: &Grammar,
    max_depth: usize,
) -> Result<CompiledGrammar, CompileError> {
    CompiledGrammar::compile(&GrammarFile::uniform(grammar.clone()), max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_grammar::mine_corpus;

    fn arith_grammar() -> Grammar {
        let corpus: Vec<Vec<u8>> = [&b"1"[..], b"(1)", b"((2))", b"1+2", b"(1+2)-3"]
            .iter()
            .map(|c| c.to_vec())
            .collect();
        mine_corpus(pdf_subjects::arith::subject(), &corpus)
    }

    #[test]
    fn compiles_and_generates() {
        let mut c = compile_uniform(&arith_grammar(), 8).unwrap();
        let mut rng = Rng::new(3);
        let mut buf = Vec::new();
        c.generate_into(&mut rng, &mut buf);
        assert!(!buf.is_empty());
        assert!(c.rules() >= 1);
        assert_eq!(c.alt_count(), c.weights().len());
    }

    #[test]
    fn lifetime_entropy_is_one_chokepoint_draw() {
        let mut c = compile_uniform(&arith_grammar(), 8).unwrap();
        let mut rng = Rng::new(3);
        let mut buf = Vec::new();
        for _ in 0..500 {
            c.generate_into(&mut rng, &mut buf);
        }
        assert_eq!(
            rng.draw_count(),
            1,
            "any number of inputs costs one accounted draw"
        );
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let mut c1 = compile_uniform(&arith_grammar(), 8).unwrap();
        let mut c2 = compile_uniform(&arith_grammar(), 8).unwrap();
        let mut r1 = Rng::new(17);
        let mut r2 = Rng::new(17);
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            c1.generate_into(&mut r1, &mut b1);
            c2.generate_into(&mut r2, &mut b2);
            assert_eq!(b1, b2);
        }
        assert_eq!(r1.stream_digest(), r2.stream_digest());

        // a different seed derives a different stream
        let mut c3 = compile_uniform(&arith_grammar(), 8).unwrap();
        let mut r3 = Rng::new(18);
        let mut distinct = false;
        for _ in 0..200 {
            c1.generate_into(&mut r1, &mut b1);
            c3.generate_into(&mut r3, &mut b2);
            distinct |= b1 != b2;
        }
        assert!(distinct, "seeds 17 and 18 generated identical corpora");
    }

    #[test]
    fn empty_grammar_generates_empty() {
        let mut c = compile_uniform(&Grammar::default(), 5).unwrap();
        let mut rng = Rng::new(1);
        let mut buf = vec![1, 2, 3];
        c.generate_into(&mut rng, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(rng.draw_count(), 0);
    }

    #[test]
    fn cheap_cycle_is_rejected() {
        let mut g = Grammar::default();
        let a = Label(0xa);
        let b = Label(0xb);
        g.add_alternative(START, vec![Sym::Ref(a)]);
        g.add_alternative(a, vec![Sym::Ref(b)]);
        g.add_alternative(b, vec![Sym::Ref(a)]);
        assert!(matches!(
            compile_uniform(&g, 4),
            Err(CompileError::CheapCycle(_))
        ));
    }

    #[test]
    fn undefined_refs_expand_to_nothing() {
        let mut g = Grammar::default();
        g.add_alternative(
            START,
            vec![
                Sym::Lit(b"a".to_vec()),
                Sym::Ref(Label(0x99)),
                Sym::Lit(b"b".to_vec()),
            ],
        );
        let mut c = compile_uniform(&g, 4).unwrap();
        let mut rng = Rng::new(1);
        let mut buf = Vec::new();
        c.generate_into(&mut rng, &mut buf);
        assert_eq!(buf, b"ab");
        assert_eq!(rng.draw_count(), 0, "forced expansion must not draw");
    }

    #[test]
    fn literal_chains_inline_to_one_op() {
        // START -> A "-" B ; A -> "xy" ; B -> C ; C -> "z"
        // the whole derivation is forced and literal, so after inlining
        // the start alternative is a single fused literal run
        let mut g = Grammar::default();
        let (a, b, c) = (Label(0xa), Label(0xb), Label(0xc));
        g.add_alternative(
            START,
            vec![Sym::Ref(a), Sym::Lit(b"-".to_vec()), Sym::Ref(b)],
        );
        g.add_alternative(a, vec![Sym::Lit(b"xy".to_vec())]);
        g.add_alternative(b, vec![Sym::Ref(c)]);
        g.add_alternative(c, vec![Sym::Lit(b"z".to_vec())]);
        let mut compiled = compile_uniform(&g, 6).unwrap();
        let (olo, ohi) = compiled.alt_ops[compiled.rule_alt_start[0] as usize];
        assert_eq!(ohi - olo, 1, "forced chain should fuse to one op");
        let mut rng = Rng::new(4);
        let mut buf = Vec::new();
        compiled.generate_into(&mut rng, &mut buf);
        assert_eq!(buf, b"xy-z");
        assert_eq!(rng.draw_count(), 0);
    }

    #[test]
    fn depth_bound_emits_precomputed_cheap_bytes() {
        let g = arith_grammar();
        let mut c = compile_uniform(&g, 0).unwrap();
        let mut rng = Rng::new(5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        c.generate_into(&mut rng, &mut a);
        c.generate_into(&mut rng, &mut b);
        assert_eq!(a, b, "depth 0 is fully forced");
        assert_eq!(rng.draw_count(), 0);
    }

    #[test]
    fn set_weights_validates_and_reweights() {
        let mut g = Grammar::default();
        g.add_alternative(START, vec![Sym::Lit(b"x".to_vec())]);
        g.add_alternative(START, vec![Sym::Lit(b"y".to_vec())]);
        let mut c = compile_uniform(&g, 4).unwrap();
        assert!(c.set_weights(&[1]).is_err());
        assert!(c.set_weights(&[1, 0]).is_err());
        // weight y overwhelmingly: nearly every sample becomes y
        c.set_weights(&[1, 1000]).unwrap();
        let mut rng = Rng::new(9);
        let mut buf = Vec::new();
        let mut ys = 0;
        for _ in 0..100 {
            c.generate_into(&mut rng, &mut buf);
            if buf == b"y" {
                ys += 1;
            }
        }
        assert!(ys > 90, "only {ys}/100 samples hit the 1000x alternative");
    }

    #[test]
    fn batch_generation_matches_per_call_generation() {
        let g = arith_grammar();
        let mut per_call = compile_uniform(&g, 8).unwrap();
        let mut batched = compile_uniform(&g, 8).unwrap();
        let mut r1 = Rng::new(6);
        let mut r2 = Rng::new(6);
        let mut batch = GenBatch::new();
        batched.generate_batch(&mut r2, &mut batch, 100);
        assert_eq!(batch.len(), 100);
        let mut buf = Vec::new();
        let mut trace = Vec::new();
        for i in 0..100 {
            per_call.generate_traced(&mut r1, &mut buf, &mut trace);
            assert_eq!(batch.input(i), buf, "input {i} diverged");
            assert_eq!(batch.trace(i), trace, "trace {i} diverged");
        }
        assert_eq!(r1.draw_count(), r2.draw_count());
        // reuse: a second batch starts clean
        batched.generate_batch(&mut r2, &mut batch, 7);
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.inputs().count(), 7);
    }

    #[test]
    fn traced_generation_attributes_choices() {
        let g = arith_grammar();
        let mut c = compile_uniform(&g, 8).unwrap();
        let mut rng = Rng::new(2);
        let mut buf = Vec::new();
        let mut trace = Vec::new();
        c.generate_traced(&mut rng, &mut buf, &mut trace);
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|&a| (a as usize) < c.alt_count()));
    }

    #[test]
    fn weight_rows_round_trip_through_codec() {
        let g = arith_grammar();
        let mut c = compile_uniform(&g, 8).unwrap();
        let flat: Vec<u32> = (0..c.alt_count() as u32).map(|i| i % 7 + 1).collect();
        c.set_weights(&flat).unwrap();
        let file = GrammarFile::with_weights(g, c.weight_rows()).unwrap();
        let back = GrammarFile::decode(&file.encode()).unwrap();
        assert_eq!(back, file);
        // recompiling from the round-tripped file restores the weights
        let c2 = CompiledGrammar::compile(&back, 8).unwrap();
        assert_eq!(c2.weights(), c.weights());
    }
}

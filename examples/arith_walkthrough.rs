//! The Figure 1 walkthrough: watch pFuzzer assemble its first valid
//! arithmetic expression character by character.
//!
//! The paper's Figure 1 starts from the empty string, observes an EOF
//! access, appends a random character, reads the failed comparisons at
//! the rejection index, substitutes, and repeats until the parser
//! accepts — reaching inputs like `(2-94)`. This example prints that
//! exact process from the driver's trace.
//!
//! Run with: `cargo run --release --example arith_walkthrough`

use parser_directed_fuzzing::eval::fig1_walkthrough;

fn main() {
    let (trace, first) = fig1_walkthrough(1, 10_000);
    println!("step | input                  | verdict       | candidates | action");
    println!("-----+------------------------+---------------+------------+----------------");
    for (i, step) in trace.iter().enumerate() {
        let verdict = if step.valid {
            "ACCEPTED"
        } else if step.eof {
            "rejected (EOF)"
        } else {
            "rejected"
        };
        println!(
            "{i:>4} | {:<22} | {verdict:<13} | {:>10} | {}",
            format!("{:?}", String::from_utf8_lossy(&step.input)),
            step.candidates,
            step.action
        );
        if step.valid {
            break;
        }
    }
    match first {
        Some(input) => println!(
            "\nfirst valid input: {:?} (cf. the paper's \"(2-94)\")",
            String::from_utf8_lossy(&input)
        ),
        None => println!("\nno valid input found within the budget"),
    }
}

//! The input-coverage story on JSON: pFuzzer synthesizes `true`,
//! `false` and `null` from `strcmp` feedback, while the AFL baseline —
//! seeing coverage only — finds the punctuation but not the keywords
//! (Table 2 / Figure 3 of the paper).
//!
//! Run with: `cargo run --release --example json_keywords`

use parser_directed_fuzzing::afl::{AflConfig, AflFuzzer};
use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;
use parser_directed_fuzzing::tokens::TokenCoverage;

const EXECS: u64 = 40_000;

fn score(name: &str, inputs: &[Vec<u8>]) {
    let mut cov = TokenCoverage::new("cjson").expect("cjson inventory");
    for input in inputs {
        cov.add_input(input);
    }
    let (short_found, short_total) = cov.fraction_in(1, 3);
    let (long_found, long_total) = cov.fraction_in(4, usize::MAX);
    println!("\n{name}: {} valid inputs", inputs.len());
    println!("  tokens len<=3: {short_found}/{short_total}   keywords (len>3): {long_found}/{long_total}");
    println!("  found: {}", cov.found_names().join(" "));
    for kw in ["true", "false", "null"] {
        println!(
            "  {kw:<6} {}",
            if cov.found(kw) { "FOUND" } else { "missing" }
        );
    }
}

fn main() {
    println!("JSON keyword discovery, {EXECS} executions each:");

    let report = Fuzzer::new(
        subjects::json::subject(),
        DriverConfig {
            seed: 1,
            max_execs: EXECS,
            ..DriverConfig::default()
        },
    )
    .run();
    score("pFuzzer", &report.valid_inputs);

    let afl = AflFuzzer::new(
        subjects::json::subject(),
        AflConfig {
            seed: 1,
            max_execs: EXECS,
            ..AflConfig::default()
        },
    )
    .run();
    score("AFL", &afl.valid_inputs);
}

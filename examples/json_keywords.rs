//! The input-coverage story on JSON: pFuzzer synthesizes `true`,
//! `false` and `null` from `strcmp` feedback, while the AFL baseline —
//! seeing coverage only — finds the punctuation but not the keywords
//! (Table 2 / Figure 3 of the paper). The twist: the pFuzzer campaign
//! *mines* those keywords into a dictionary (no grammar, no hand-rolled
//! list), and handing that mined dictionary to AFL's token-preserving
//! havoc closes most of its keyword gap — the Section 6 AFL-CTP
//! discussion, reproduced end to end.
//!
//! Run with: `cargo run --release --example json_keywords`

use parser_directed_fuzzing::afl::{AflConfig, AflFuzzer};
use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;
use parser_directed_fuzzing::tokens::{TokenCoverage, TokenMiner};

const EXECS: u64 = 40_000;

fn score(name: &str, inputs: &[Vec<u8>]) {
    let mut cov = TokenCoverage::new("cjson").expect("cjson inventory");
    for input in inputs {
        cov.add_input(input);
    }
    let (short_found, short_total) = cov.fraction_in(1, 3);
    let (long_found, long_total) = cov.fraction_in(4, usize::MAX);
    println!("\n{name}: {} valid inputs", inputs.len());
    println!("  tokens len<=3: {short_found}/{short_total}   keywords (len>3): {long_found}/{long_total}");
    println!("  found: {}", cov.found_names().join(" "));
}

fn main() {
    println!("JSON keyword discovery, {EXECS} executions each:");

    // pFuzzer, with the token-mining tap on: every failed string
    // comparison at a rejection point names the whole expected keyword.
    let report = Fuzzer::new(
        subjects::json::subject(),
        DriverConfig {
            seed: 1,
            max_execs: EXECS,
            mine_tokens: true,
            ..DriverConfig::default()
        },
    )
    .run();
    score("pFuzzer", &report.valid_inputs);

    // Mine the dictionary from what the campaign observed — the
    // comparison operands plus recurring valid-corpus substrings.
    let mut miner = TokenMiner::new();
    for (token, count) in &report.mined_tokens {
        for _ in 0..*count {
            miner.observe_comparison(token);
        }
    }
    for input in &report.valid_inputs {
        miner.observe_corpus_input(input);
    }
    let dict = miner.mine();
    println!(
        "\nmined dictionary ({} tokens): {}",
        dict.len(),
        dict.tokens()
            .iter()
            .map(|t| String::from_utf8_lossy(t).into_owned())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // AFL bare: coverage feedback alone rarely spells a keyword.
    let afl = AflFuzzer::new(
        subjects::json::subject(),
        AflConfig {
            seed: 1,
            max_execs: EXECS,
            ..AflConfig::default()
        },
    )
    .run();
    score("AFL", &afl.valid_inputs);

    // AFL fed the mined dictionary, with token-preserving havoc: the
    // dictionary op runs last so the spliced keyword survives the stack.
    let afl_dict = AflFuzzer::new(
        subjects::json::subject(),
        AflConfig {
            seed: 1,
            max_execs: EXECS,
            dictionary: dict.tokens().to_vec(),
            preserve_tokens: true,
            ..AflConfig::default()
        },
    )
    .run();
    score("AFL + mined dictionary", &afl_dict.valid_inputs);
}

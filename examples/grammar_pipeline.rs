//! The Section 7.4 pipeline end to end: pFuzzer explores the subject,
//! a grammar is mined from its valid inputs using the comparison/stack
//! instrumentation, and the mined grammar generates longer, recursive
//! inputs — "longer and more complex sequences that contain recursive
//! structures".
//!
//! Run with:
//! `cargo run --release --example grammar_pipeline -- [subject] [fuzz_execs]`
//! (default: cjson 30000)

use parser_directed_fuzzing::grammar::pipeline::{run_pipeline, PipelineConfig};
use parser_directed_fuzzing::subjects;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let subject_name = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("cjson")
        .to_string();
    let fuzz_execs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30_000);

    let Some(info) = subjects::by_name(&subject_name) else {
        eprintln!("unknown subject {subject_name}");
        std::process::exit(1);
    };

    let report = run_pipeline(
        info.subject,
        &PipelineConfig {
            seed: 1,
            fuzz_execs,
            generate: 500,
            max_depth: 12,
        },
    );

    println!(
        "explore: {} valid inputs (longest {} bytes)",
        report.fuzzed.len(),
        report.max_fuzzed_len
    );
    println!(
        "mine:    {} nonterminals, {} alternatives, recursive: {}",
        report.grammar.len(),
        report.grammar.alt_count(),
        report.grammar.has_recursion()
    );
    println!("{}", report.grammar.render());
    println!(
        "generate: {}/{} accepted ({:.0}%), {} distinct, longest {} bytes",
        report.generated_valid_count,
        report.generated_total,
        100.0 * report.acceptance_rate(),
        report.generated_valid.len(),
        report.max_generated_len
    );
    let mut longest: Vec<&Vec<u8>> = report.generated_valid.iter().collect();
    longest.sort_by_key(|i| std::cmp::Reverse(i.len()));
    println!("longest generated inputs:");
    for input in longest.into_iter().take(5) {
        println!("  {}", String::from_utf8_lossy(input));
    }
}

//! Quickstart: point pFuzzer at a parser and collect valid inputs.
//!
//! Run with: `cargo run --release --example quickstart`

use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;

fn main() {
    // 1. pick an instrumented subject — here the cJSON re-implementation
    let subject = subjects::json::subject();

    // 2. configure the fuzzer: a seed and an execution budget is all
    //    it needs; no grammar, no seed corpus
    let config = DriverConfig {
        seed: 1,
        max_execs: 30_000,
        ..DriverConfig::default()
    };

    // 3. run — every produced input is valid by construction and
    //    covered new code when it was found
    let report = Fuzzer::new(subject, config).run();

    println!(
        "pFuzzer ran {} executions and produced {} valid JSON inputs:",
        report.execs,
        report.valid_inputs.len()
    );
    for input in &report.valid_inputs {
        println!("  {}", String::from_utf8_lossy(input));
    }
    println!(
        "branches covered by valid inputs: {}",
        report.valid_branches.len()
    );
}

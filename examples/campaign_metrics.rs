//! Campaign observability: run one mjs pFuzzer campaign with the
//! metrics layer installed and print the per-phase time breakdown plus
//! the full `pdf-metrics v1` snapshot.
//!
//! Run with: `cargo run --release --example campaign_metrics`

use std::sync::Arc;

use parser_directed_fuzzing::obs;
use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;

fn main() {
    // Installing a registry turns the (otherwise no-op) instrumentation
    // on for this thread. Metrics are observe-only: the campaign below
    // computes exactly what it would without the registry.
    let registry = Arc::new(obs::MetricsRegistry::new());
    let _scope = obs::install(Arc::clone(&registry));

    let config = DriverConfig {
        seed: 1,
        max_execs: 20_000,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(subjects::mjs::subject(), config).run();
    println!(
        "mjs campaign: {} executions, {} valid inputs\n",
        report.execs,
        report.valid_inputs.len()
    );

    // Per-phase breakdown of the driver loop (pick -> exec -> classify
    // -> enqueue), from the spans recorded around each phase.
    println!("phase breakdown:");
    let total: u64 = [
        "driver.pick",
        "driver.exec",
        "driver.classify",
        "driver.enqueue",
    ]
    .iter()
    .filter_map(|p| registry.span_stat(p))
    .map(|s| s.total_ns)
    .sum();
    for phase in [
        "driver.pick",
        "driver.exec",
        "driver.classify",
        "driver.enqueue",
    ] {
        let stat = registry.span_stat(phase).unwrap_or_default();
        println!(
            "  {phase:<16} {:>9} spans  {:>9.1} ms  {:>5.1}%",
            stat.count,
            stat.total_ns as f64 / 1e6,
            100.0 * stat.total_ns as f64 / total.max(1) as f64,
        );
    }

    let snapshot = registry.snapshot();
    snapshot
        .check_identities()
        .expect("counter identities hold by construction");
    println!("\n{}", snapshot.encode());
}

//! A miniature of the paper's full evaluation: all three tools on one
//! subject of your choice, comparing branch coverage and token
//! coverage.
//!
//! Run with:
//! `cargo run --release --example baseline_shootout -- [subject] [execs]`
//! where subject is one of ini, csv, cjson, tinyC, mjs (default cjson).

use parser_directed_fuzzing::eval::{coverage_universe, relative_coverage, run_tool_seeded, Tool};
use parser_directed_fuzzing::subjects;
use parser_directed_fuzzing::tokens::TokenCoverage;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let subject_name = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("cjson")
        .to_string();
    let execs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);

    let Some(info) = subjects::by_name(&subject_name) else {
        eprintln!("unknown subject {subject_name}; use ini, csv, cjson, tinyC or mjs");
        std::process::exit(1);
    };

    println!("{subject_name}: {execs} executions per tool\n");
    let outcomes: Vec<_> = Tool::ALL
        .iter()
        .map(|&tool| run_tool_seeded(tool, &info, execs, 1))
        .collect();
    let universe = coverage_universe(&info, &outcomes.iter().collect::<Vec<_>>());

    println!(
        "{:<10}{:>14}{:>12}{:>16}{:>14}",
        "Tool", "valid inputs", "coverage", "tokens <=3", "tokens >3"
    );
    for outcome in &outcomes {
        let coverage = relative_coverage(outcome, &universe);
        let (short, long) = match TokenCoverage::new(&subject_name) {
            Some(mut cov) => {
                for input in &outcome.valid_inputs {
                    cov.add_input(input);
                }
                (cov.fraction_in(1, 3), cov.fraction_in(4, usize::MAX))
            }
            None => ((0, 0), (0, 0)),
        };
        println!(
            "{:<10}{:>14}{:>11.1}%{:>16}{:>14}",
            outcome.tool.name(),
            outcome.valid_inputs.len(),
            coverage,
            format!("{}/{}", short.0, short.1),
            format!("{}/{}", long.0, long.1),
        );
    }
}

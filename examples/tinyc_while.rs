//! The Section 5.3 motivating case: producing a valid `while` loop for
//! tinyC. "Such a long keyword is hard to generate by pure chance —
//! even if a fuzzer would generate letters only, the chance for
//! producing it would be only 26^5, or 1 in 11 million." pFuzzer gets
//! it from a handful of failed `strcmp`s instead.
//!
//! Run with: `cargo run --release --example tinyc_while`

use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;

fn main() {
    let config = DriverConfig {
        seed: 3,
        max_execs: 60_000,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(subjects::tinyc::subject(), config).run();

    println!(
        "pFuzzer on tinyC: {} executions, {} valid programs",
        report.execs,
        report.valid_inputs.len()
    );
    let mut with_keywords = 0;
    for input in &report.valid_inputs {
        let text = String::from_utf8_lossy(input);
        let marker = ["while", "if", "do", "else"]
            .iter()
            .find(|kw| text.contains(*kw));
        if let Some(kw) = marker {
            with_keywords += 1;
            println!("  [{kw:<5}] {text}");
        }
    }
    if with_keywords == 0 {
        println!("  (no keyword inputs in this run — try more executions)");
        for input in report.valid_inputs.iter().take(10) {
            println!("  {}", String::from_utf8_lossy(input));
        }
    } else {
        println!("{with_keywords} inputs exercise keyword constructs.");
    }
}
